//! End-to-end library-API tests: served predictions must be bit-identical
//! to direct `downscale_with` calls (cross-request microbatching included),
//! and the response cache / admission control must behave observably.

use orbit2::inference::downscale_with;
use orbit2::serving::{ServeError, ServeRequest};
use orbit2_model::{SessionActivation, SessionPrecision};
use orbit2_climate::{DownscalingDataset, LatLonGrid, Normalizer, VariableSet};
use orbit2_imaging::tiles::TileSpec;
use orbit2_model::{ModelConfig, ReslimModel};
use orbit2_serve::{Region, Server, ServerConfig};
use orbit2_tensor::Tensor;

fn setup() -> (ReslimModel, Normalizer, DownscalingDataset) {
    let ds =
        DownscalingDataset::new(LatLonGrid::conus(16, 32), VariableSet::daymet_like(), 4, 10, 3);
    let model = ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 2);
    let norm = Normalizer::fit(&ds, 4);
    (model, norm, ds)
}

fn start(cfg: ServerConfig) -> (Server, ReslimModel, Normalizer, DownscalingDataset) {
    let (model, norm, ds) = setup();
    // An identically-seeded twin of the served model for reference runs.
    let (ref_model, ref_norm, ref_ds) = setup();
    let server = Server::start(
        model,
        norm,
        vec![Region { name: "conus".into(), dataset: ds }],
        cfg,
    );
    (server, ref_model, ref_norm, ref_ds)
}

/// Batched serving must be bitwise-equal to direct inference: submit a
/// burst of same-shaped raw requests (so they stack into one forward) and
/// compare every payload against `downscale_with` on the same input.
#[test]
fn batched_serving_matches_downscale_with_bitwise() {
    for &compression in &[1.0f32, 2.0] {
        let cfg = ServerConfig {
            max_batch: 4,
            window_micros: 200_000, // generous: the whole burst lands in one window
            cache_capacity: 0,
            ..ServerConfig::default()
        };
        let (server, model, norm, ds) = start(cfg);
        let session = model.session();
        let inputs: Vec<Tensor> = (0..4).map(|i| ds.sample(i).input).collect();
        let handles: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(i, input)| {
                let mut req =
                    ServeRequest::raw(i as u64, input.shape().to_vec(), input.data().to_vec());
                req.compression = compression;
                server.submit(req)
            })
            .collect();
        let mut max_batch = 0;
        for (handle, input) in handles.iter().zip(&inputs) {
            let resp = handle.wait().expect("request succeeds");
            let reference =
                downscale_with(&model, &session, &norm, input, None, compression).unwrap();
            assert_eq!(resp.shape, reference.shape().to_vec());
            assert_eq!(resp.data, reference.data(), "served != direct at compression {compression}");
            assert!(!resp.cached);
            max_batch = max_batch.max(resp.batch);
        }
        assert!(
            max_batch >= 2,
            "burst of 4 same-shaped requests never batched (max batch {max_batch})"
        );
        assert!(server.stats().batched_jobs >= 2);
    }
}

/// Tiled serving goes through the same split/stitch as `downscale_with`
/// with the same spec, so outputs stay bitwise-equal tile-by-tile.
#[test]
fn tiled_serving_matches_downscale_with() {
    let spec = TileSpec::square(4, 1);
    let cfg = ServerConfig {
        tile: Some(spec),
        max_batch: 8,
        window_micros: 100_000,
        cache_capacity: 0,
        ..ServerConfig::default()
    };
    let (server, model, norm, ds) = start(cfg);
    let session = model.session();
    let inputs: Vec<Tensor> = (0..2).map(|i| ds.sample(i).input).collect();
    let handles: Vec<_> = inputs
        .iter()
        .enumerate()
        .map(|(i, input)| {
            server.submit(ServeRequest::raw(i as u64, input.shape().to_vec(), input.data().to_vec()))
        })
        .collect();
    for (handle, input) in handles.iter().zip(&inputs) {
        let resp = handle.wait().expect("request succeeds");
        let reference = downscale_with(&model, &session, &norm, input, Some(spec), 1.0).unwrap();
        assert_eq!(resp.data, reference.data(), "tiled served != tiled direct");
    }
}

/// Unbatched mode must produce the same bits as batched mode (which the
/// bitwise guarantee implies, but this pins the `batching: false` path).
#[test]
fn unbatched_mode_matches_direct_too() {
    let cfg = ServerConfig {
        batching: false,
        window_micros: 0,
        cache_capacity: 0,
        ..ServerConfig::default()
    };
    let (server, model, norm, ds) = start(cfg);
    let session = model.session();
    let input = ds.sample(3).input;
    let resp = server
        .submit(ServeRequest::raw(1, input.shape().to_vec(), input.data().to_vec()))
        .wait()
        .unwrap();
    let reference = downscale_with(&model, &session, &norm, &input, None, 1.0).unwrap();
    assert_eq!(resp.data, reference.data());
    assert_eq!(resp.batch, 1);
}

#[test]
fn cache_serves_repeat_region_requests() {
    let (server, _, _, _) = start(ServerConfig { cache_capacity: 8, ..ServerConfig::default() });
    let cold = server.submit(ServeRequest::region(1, "conus", 2)).wait().unwrap();
    assert!(!cold.cached);
    let warm = server.submit(ServeRequest::region(2, "conus", 2)).wait().unwrap();
    assert!(warm.cached, "second identical region request must hit the cache");
    assert_eq!(warm.batch, 0, "cache hits never touch the model");
    assert_eq!(warm.data, cold.data);
    let stats = server.cache_stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.entries, 1);
    // Different knobs are different cache keys.
    let mut compressed = ServeRequest::region(3, "conus", 2);
    compressed.compression = 2.0;
    let other = server.submit(compressed).wait().unwrap();
    assert!(!other.cached);
    assert_eq!(server.cache_stats().misses, 2);
}

#[test]
fn variable_selection_slices_outputs() {
    let (server, model, norm, ds) = start(ServerConfig::default());
    let session = model.session();
    let mut req = ServeRequest::region(1, "conus", 0);
    req.variables = Some(vec!["tmax".into()]);
    let resp = server.submit(req).wait().unwrap();
    assert_eq!(resp.shape[0], 1, "one selected variable, one output channel");
    let full = downscale_with(&model, &session, &norm, &ds.sample(0).input, None, 1.0).unwrap();
    let idx = ds.variables().output_index("tmax").unwrap();
    assert_eq!(resp.data, full.slice_axis(0, idx, 1).data());
}

#[test]
fn admission_errors_complete_immediately() {
    let (server, _, _, ds) = start(ServerConfig { queue_capacity: 0, ..ServerConfig::default() });
    // queue_capacity 0: every otherwise-valid request is turned away.
    let input = ds.sample(0).input;
    let err = server
        .submit(ServeRequest::raw(1, input.shape().to_vec(), input.data().to_vec()))
        .wait()
        .unwrap_err();
    assert_eq!(err, ServeError::QueueFull { capacity: 0 });
    // The slot freed on rejection: the error repeats rather than compounds.
    let err2 = server
        .submit(ServeRequest::raw(2, input.shape().to_vec(), input.data().to_vec()))
        .wait()
        .unwrap_err();
    assert_eq!(err2, ServeError::QueueFull { capacity: 0 });
}

#[test]
fn shutdown_rejects_new_requests() {
    let (server, _, _, _) = start(ServerConfig::default());
    server.shutdown();
    assert!(server.is_shutting_down());
    let err = server.submit(ServeRequest::region(1, "conus", 0)).wait().unwrap_err();
    assert_eq!(err, ServeError::ShuttingDown);
}

#[test]
fn bad_requests_get_typed_errors() {
    let (server, _, _, _) = start(ServerConfig::default());
    let err = server.submit(ServeRequest::region(1, "atlantis", 0)).wait().unwrap_err();
    assert_eq!(err, ServeError::UnknownRegion { region: "atlantis".into() });

    let err = server.submit(ServeRequest::region(2, "conus", 999)).wait().unwrap_err();
    assert!(matches!(err, ServeError::BadRequest { .. }), "time out of range: {err}");

    let mut req = ServeRequest::region(3, "conus", 0);
    req.compression = 0.5;
    let err = server.submit(req).wait().unwrap_err();
    assert_eq!(err, ServeError::BadCompression { got: 0.5 });

    let mut req = ServeRequest::region(4, "conus", 0);
    req.variables = Some(vec!["vorticity".into()]);
    let err = server.submit(req).wait().unwrap_err();
    assert_eq!(err, ServeError::UnknownVariable { variable: "vorticity".into() });

    let err = server.submit(ServeRequest::raw(5, vec![2, 2], vec![0.0; 4])).wait().unwrap_err();
    assert_eq!(err.kind(), "invalid_rank");

    let err =
        server.submit(ServeRequest::raw(6, vec![2, 4, 8], vec![0.0; 64])).wait().unwrap_err();
    assert_eq!(err.kind(), "channel_mismatch");

    let err =
        server.submit(ServeRequest::raw(7, vec![7, 5, 8], vec![0.0; 280])).wait().unwrap_err();
    assert_eq!(err.kind(), "not_patch_aligned");

    let err = server.submit(ServeRequest::raw(8, vec![7, 4, 8], vec![0.0; 3])).wait().unwrap_err();
    assert!(matches!(err, ServeError::BadRequest { .. }), "shape/data mismatch: {err}");
}

/// Per-precision serving: a request carrying `precision` runs through a
/// session packed at that precision, bitwise-equal to a direct call through
/// the same reduced session, and distinct precisions never share cache
/// entries.
#[test]
fn precision_requests_match_reduced_sessions_and_never_share_cache() {
    let (server, model, norm, ds) = start(ServerConfig { cache_capacity: 8, ..ServerConfig::default() });
    let input = ds.sample(1).input;
    for (precision, label) in
        [(SessionPrecision::Bf16, "bf16"), (SessionPrecision::Int8, "int8")]
    {
        let req = ServeRequest::region(1, "conus", 1).at_precision(precision);
        let resp = server.submit(req).wait().unwrap();
        let session = model.session_at(precision);
        let reference = downscale_with(&model, &session, &norm, &input, None, 1.0).unwrap();
        assert_eq!(resp.data, reference.data(), "served {label} != direct {label} session");
        assert!(!resp.cached, "{label} must not hit another precision's cache entry");
        // Same request again: now it hits, within its own precision.
        let warm = server
            .submit(ServeRequest::region(2, "conus", 1).at_precision(precision))
            .wait()
            .unwrap();
        assert!(warm.cached);
        assert_eq!(warm.data, resp.data);
    }
    // The f32 default still computes its own entry: three misses total.
    let f32_resp = server.submit(ServeRequest::region(3, "conus", 1)).wait().unwrap();
    assert!(!f32_resp.cached, "f32 must not reuse a reduced-precision entry");
    let stats = server.serve_stats();
    assert_eq!(stats.cache_misses, 3);
    assert_eq!(stats.cache_hits, 2);
    assert_eq!(stats.requests_bf16, 2);
    assert_eq!(stats.requests_int8, 2);
    assert_eq!(stats.requests_f32, 1);
}

/// An explicit `precision: "f32"` on the wire overrides a reduced server
/// default; an omitted precision inherits the default.
#[test]
fn server_default_precision_applies_to_unlabelled_requests() {
    let cfg = ServerConfig {
        precision: SessionPrecision::Bf16,
        cache_capacity: 8,
        ..ServerConfig::default()
    };
    let (server, model, norm, ds) = start(cfg);
    let input = ds.sample(0).input;

    let default_resp = server.submit(ServeRequest::region(1, "conus", 0)).wait().unwrap();
    let bf16 = model.session_at(SessionPrecision::Bf16);
    let reference = downscale_with(&model, &bf16, &norm, &input, None, 1.0).unwrap();
    assert_eq!(default_resp.data, reference.data(), "unlabelled request must use the bf16 default");

    let forced = server
        .submit(ServeRequest::region(2, "conus", 0).at_precision(SessionPrecision::F32))
        .wait()
        .unwrap();
    let f32_session = model.session();
    let f32_ref = downscale_with(&model, &f32_session, &norm, &input, None, 1.0).unwrap();
    assert_eq!(forced.data, f32_ref.data(), "explicit f32 must override the bf16 default");
    assert!(!forced.cached);

    let stats = server.serve_stats();
    assert_eq!(stats.requests_bf16, 1);
    assert_eq!(stats.requests_f32, 1);
}

/// Mixed-precision bursts must never stack into one forward: the job key
/// includes the precision, so each batch runs through a single session.
#[test]
fn mixed_precision_bursts_do_not_cobatch() {
    let cfg = ServerConfig {
        max_batch: 8,
        window_micros: 200_000,
        cache_capacity: 0,
        ..ServerConfig::default()
    };
    let (server, model, norm, ds) = start(cfg);
    let input = ds.sample(2).input;
    let mk = |id: u64, p: SessionPrecision| {
        ServeRequest::raw(id, input.shape().to_vec(), input.data().to_vec()).at_precision(p)
    };
    let handles: Vec<_> = [
        SessionPrecision::F32,
        SessionPrecision::Bf16,
        SessionPrecision::F32,
        SessionPrecision::Bf16,
    ]
    .iter()
    .enumerate()
    .map(|(i, &p)| (p, server.submit(mk(i as u64, p))))
    .collect();
    for (precision, handle) in handles {
        let resp = handle.wait().unwrap();
        let session = model.session_at(precision);
        let reference = downscale_with(&model, &session, &norm, &input, None, 1.0).unwrap();
        assert_eq!(
            resp.data,
            reference.data(),
            "a {precision:?} request must be served by a {precision:?} session even in a mixed burst"
        );
    }
}

/// Per-activation serving: a request carrying `activation: "bf16"` runs
/// through a session streaming bf16 activations, bitwise-equal to a direct
/// call through the same session, and the two activation precisions never
/// share cache entries.
#[test]
fn activation_requests_match_bf16_sessions_and_never_share_cache() {
    let (server, model, norm, ds) =
        start(ServerConfig { cache_capacity: 8, ..ServerConfig::default() });
    let input = ds.sample(1).input;
    let req = ServeRequest::region(1, "conus", 1).at_activation(SessionActivation::Bf16);
    let resp = server.submit(req).wait().unwrap();
    let session = model.session_with(SessionPrecision::F32, SessionActivation::Bf16);
    let reference = downscale_with(&model, &session, &norm, &input, None, 1.0).unwrap();
    assert_eq!(resp.data, reference.data(), "served bf16-act != direct bf16-act session");
    assert!(!resp.cached);
    // The f32-activation default computes its own entry...
    let f32_resp = server.submit(ServeRequest::region(2, "conus", 1)).wait().unwrap();
    assert!(!f32_resp.cached, "f32-act must not reuse a bf16-act cache entry");
    // ...and a repeat bf16-act request hits within its own cell.
    let warm = server
        .submit(ServeRequest::region(3, "conus", 1).at_activation(SessionActivation::Bf16))
        .wait()
        .unwrap();
    assert!(warm.cached);
    assert_eq!(warm.data, resp.data);
    let stats = server.serve_stats();
    assert_eq!(stats.cache_misses, 2);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.requests_act_bf16, 2);
    assert_eq!(stats.requests_act_f32, 1);
    // All three requests ran at f32 weights: the axes are orthogonal.
    assert_eq!(stats.requests_f32, 3);
}

/// Mixed-activation bursts must never stack into one forward: the job key
/// includes the activation precision, so each batch runs through a single
/// session cell.
#[test]
fn mixed_activation_bursts_do_not_cobatch() {
    let cfg = ServerConfig {
        max_batch: 8,
        window_micros: 200_000,
        cache_capacity: 0,
        ..ServerConfig::default()
    };
    let (server, model, norm, ds) = start(cfg);
    let input = ds.sample(2).input;
    let mk = |id: u64, a: SessionActivation| {
        ServeRequest::raw(id, input.shape().to_vec(), input.data().to_vec()).at_activation(a)
    };
    let handles: Vec<_> = [
        SessionActivation::F32,
        SessionActivation::Bf16,
        SessionActivation::F32,
        SessionActivation::Bf16,
    ]
    .iter()
    .enumerate()
    .map(|(i, &a)| (a, server.submit(mk(i as u64, a))))
    .collect();
    for (activation, handle) in handles {
        let resp = handle.wait().unwrap();
        let session = model.session_with(SessionPrecision::F32, activation);
        let reference = downscale_with(&model, &session, &norm, &input, None, 1.0).unwrap();
        assert_eq!(
            resp.data,
            reference.data(),
            "a {activation:?}-activation request must be served by its own session cell \
             even in a mixed burst"
        );
    }
}

/// The stats snapshot carries buffer-pool telemetry: serving traffic must
/// move the process-wide pool counters (forward passes recycle activation
/// buffers), observable by diffing snapshots around a request.
#[test]
fn serve_stats_expose_pool_telemetry() {
    let (server, _, _, ds) = start(ServerConfig { cache_capacity: 0, ..ServerConfig::default() });
    let before = server.serve_stats();
    let input = ds.sample(0).input;
    server
        .submit(ServeRequest::raw(1, input.shape().to_vec(), input.data().to_vec()))
        .wait()
        .unwrap();
    let after = server.serve_stats();
    let touched = (after.pool_fresh_allocs + after.pool_reuses + after.pool_copies)
        > (before.pool_fresh_allocs + before.pool_reuses + before.pool_copies);
    assert!(touched, "a forward pass must tick the pool counters: {before:?} -> {after:?}");
}
