//! Chaos harness: hammer a fault-injected server from concurrent clients
//! with mixed precisions, tile shapes, and deadlines, and assert the
//! serving resilience invariant — **every submitted request reaches
//! exactly one terminal state** (a response or a typed error, never a
//! hang), and the server's inflight gauge returns to zero (no leaked
//! permits). Run in both SIMD modes by `scripts/chaos_smoke.sh`, which
//! also re-runs the default-config test with a canned
//! `ORBIT2_SERVE_FAULT_PLAN` so the env-armed injection path gets chaos
//! coverage too.

use orbit2::fault::FaultPlan;
use orbit2::serving::{ServeError, ServeRequest};
use orbit2_climate::{DownscalingDataset, LatLonGrid, Normalizer, VariableSet};
use orbit2_imaging::tiles::TileSpec;
use orbit2_model::{ModelConfig, ReslimModel, SessionPrecision};
use orbit2_serve::{Region, Server, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn start(cfg: ServerConfig) -> Arc<Server> {
    let ds =
        DownscalingDataset::new(LatLonGrid::conus(16, 32), VariableSet::daymet_like(), 4, 10, 3);
    let model = ReslimModel::new(ModelConfig::tiny().with_channels(7, 3), 2);
    let norm = Normalizer::fit(&ds, 4);
    Arc::new(Server::start(model, norm, vec![Region { name: "conus".into(), dataset: ds }], cfg))
}

/// Poll the inflight gauge down to zero; panics if permits leaked.
fn await_idle(server: &Server) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while server.inflight() != 0 {
        assert!(
            Instant::now() < deadline,
            "inflight stuck at {} — a request leaked its permit",
            server.inflight()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// One client thread's worth of traffic: mixed sources, precisions, and
/// deadlines, every handle waited to a terminal state.
fn hammer(
    server: &Server,
    client: u64,
    requests: u64,
) -> Vec<(u64, Option<u64>, Result<(), ServeError>)> {
    let mut out = Vec::with_capacity(requests as usize);
    for i in 0..requests {
        let id = client * 1_000 + i;
        let mut req = ServeRequest::region(id, "conus", (i % 10) as usize);
        if i % 3 == 1 {
            req = req.at_precision(SessionPrecision::Bf16);
        }
        // A third of the traffic carries deadlines, some of them tight
        // enough to trip the checkpoints under straggler injection.
        let deadline_ms = match i % 6 {
            2 => Some(40),
            5 => Some(1),
            _ => None,
        };
        if let Some(ms) = deadline_ms {
            req = req.with_deadline_ms(ms);
        }
        let handle = server.submit(req);
        let result = handle
            .wait_timeout(Duration::from_secs(30))
            .unwrap_or_else(|| panic!("request {id} never reached a terminal state"));
        out.push((id, deadline_ms, result.map(|_| ())));
    }
    out
}

fn run_chaos(server: &Arc<Server>, clients: u64, requests: u64) -> Vec<(u64, Option<u64>, Result<(), ServeError>)> {
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let server = Arc::clone(server);
            std::thread::spawn(move || hammer(&server, c, requests))
        })
        .collect();
    let mut all = Vec::new();
    for t in threads {
        all.extend(t.join().expect("client thread must not die"));
    }
    all
}

/// Transient chaos: panics and stragglers at well above the 2% floor.
/// The quarantine retry runs clean, so every request without a deadline
/// must *succeed* — an injected panic is never allowed to fail an
/// innocent (or even the culprit, transiently) — and deadline-carrying
/// requests may only add `deadline_exceeded` to the outcome set.
#[test]
fn transient_chaos_recovers_every_request() {
    let cfg = ServerConfig {
        tile: Some(TileSpec::square(4, 1)),
        max_batch: 4,
        window_micros: 500,
        cache_capacity: 0,
        queue_capacity: 256,
        fault_plan: Some(FaultPlan::seeded(11, 0.10, 0.0, 0.10).with_straggle_ms(3)),
        ..ServerConfig::default()
    };
    let server = start(cfg);
    let results = run_chaos(&server, 4, 12);
    assert_eq!(results.len(), 48);
    for (id, deadline_ms, result) in &results {
        match result {
            Ok(()) => {}
            Err(ServeError::DeadlineExceeded { .. }) => {
                assert!(
                    deadline_ms.is_some(),
                    "request {id} had no deadline but expired"
                );
            }
            Err(other) => panic!(
                "request {id}: transient chaos must recover everything, got {other:?}"
            ),
        }
    }
    await_idle(&server);
    let stats = server.stats();
    assert!(
        stats.retried_jobs > 0,
        "with 10% panic injection over {} batches some quarantine retry must have fired: {stats:?}",
        stats.batches
    );
    assert_eq!(
        stats.quarantined_jobs, 0,
        "transient faults must never fail an isolated retry"
    );
}

/// Persistent chaos: culprit tiles stay dead on retry, so their requests
/// fail with the typed `internal` error — and nothing else. Every
/// `internal` outcome is backed by at least one quarantined job, and
/// innocents keep succeeding (quarantine isolation at scale).
#[test]
fn persistent_chaos_fails_only_quarantined_culprits() {
    let cfg = ServerConfig {
        tile: Some(TileSpec::square(4, 1)),
        max_batch: 4,
        window_micros: 500,
        cache_capacity: 0,
        queue_capacity: 256,
        fault_plan: Some(FaultPlan::seeded(23, 0.06, 0.0, 0.06).with_straggle_ms(3).with_persistent()),
        ..ServerConfig::default()
    };
    let server = start(cfg);
    let results = run_chaos(&server, 4, 12);
    assert_eq!(results.len(), 48);
    let mut internal = 0u64;
    for (id, deadline_ms, result) in &results {
        match result {
            Ok(()) => {}
            Err(ServeError::Internal { reason }) => {
                internal += 1;
                assert!(
                    reason.contains("isolated retry"),
                    "request {id}: internal error must explain the quarantine: {reason}"
                );
            }
            Err(ServeError::DeadlineExceeded { .. }) => {
                assert!(deadline_ms.is_some(), "request {id} had no deadline but expired");
            }
            Err(other) => panic!("request {id}: unexpected terminal error {other:?}"),
        }
    }
    await_idle(&server);
    let stats = server.stats();
    assert!(
        stats.quarantined_jobs > 0,
        "with 6% persistent panics some culprit must have stayed dead: {stats:?}"
    );
    assert!(
        stats.quarantined_jobs >= internal,
        "every internal outcome needs a quarantined tile: {internal} internals, {} quarantined",
        stats.quarantined_jobs
    );
    assert!(
        internal < results.len() as u64,
        "persistent chaos at 6% must not kill every request"
    );
}

/// Chaos racing a drain: half-way through the hammering the server
/// drains. Every request still terminates exactly once — as a response,
/// a typed injection/deadline failure, or `shutting_down` — and the
/// inflight gauge returns to zero.
#[test]
fn chaos_racing_a_drain_still_terminates_every_request() {
    let cfg = ServerConfig {
        tile: Some(TileSpec::square(4, 1)),
        max_batch: 4,
        window_micros: 500,
        cache_capacity: 0,
        queue_capacity: 256,
        fault_plan: Some(FaultPlan::seeded(5, 0.05, 0.0, 0.10).with_straggle_ms(5)),
        ..ServerConfig::default()
    };
    let server = start(cfg);
    let drainer = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            server.drain(Duration::from_secs(20));
        })
    };
    let results = run_chaos(&server, 3, 10);
    drainer.join().unwrap();
    assert_eq!(results.len(), 30);
    for (id, deadline_ms, result) in &results {
        match result {
            Ok(()) => {}
            Err(ServeError::ShuttingDown) => {}
            Err(ServeError::DeadlineExceeded { .. }) => {
                assert!(deadline_ms.is_some(), "request {id} had no deadline but expired");
            }
            Err(other) => panic!("request {id}: unexpected terminal error {other:?}"),
        }
    }
    await_idle(&server);
    assert!(server.is_shutting_down());
}

/// The invariant for a default-resolution server (`fault_plan: None`):
/// with no environment plan this runs clean; with a canned
/// `ORBIT2_SERVE_FAULT_PLAN` (as `scripts/chaos_smoke.sh` sets) the same
/// test drives the env-armed injection path. Either way every request
/// terminates exactly once and no permit leaks.
#[test]
fn default_config_invariant_holds_with_or_without_env_plan() {
    let cfg = ServerConfig {
        tile: Some(TileSpec::square(4, 1)),
        max_batch: 4,
        window_micros: 500,
        cache_capacity: 0,
        queue_capacity: 256,
        // None: resolved from ORBIT2_SERVE_FAULT_PLAN when the harness
        // sets it, empty otherwise.
        fault_plan: None,
        ..ServerConfig::default()
    };
    let server = start(cfg);
    let results = run_chaos(&server, 3, 10);
    assert_eq!(results.len(), 30);
    for (id, deadline_ms, result) in &results {
        match result {
            Ok(()) => {}
            Err(ServeError::DeadlineExceeded { .. }) => {
                assert!(deadline_ms.is_some(), "request {id} had no deadline but expired");
            }
            // A canned persistent plan may quarantine culprits.
            Err(ServeError::Internal { .. }) => {}
            Err(other) => panic!("request {id}: unexpected terminal error {other:?}"),
        }
    }
    await_idle(&server);
}
