//! Tokenization and embeddings: per-variable patch embedding, 2-D
//! sinusoidal positions, and the learnable resolution embedding that makes
//! predictions resolution-aware (paper Sec. III-A).

use crate::config::ModelConfig;
use crate::exec::Exec;
use orbit2_autograd::ParamStore;
use orbit2_tensor::random::{randn, xavier};
use orbit2_tensor::Tensor;

/// Register the embedding parameters for `cfg` into `store`.
pub fn init_embed_params(store: &mut ParamStore, cfg: &ModelConfig, seed: u64) {
    let p2 = cfg.patch * cfg.patch;
    store.insert("embed.w", xavier(&[cfg.embed_dim, p2], seed ^ 0x01));
    store.insert("embed.b", Tensor::zeros(vec![cfg.embed_dim]));
    // One learned embedding vector per input variable.
    store.insert(
        "embed.var",
        randn(&[cfg.in_channels, cfg.embed_dim], seed ^ 0x02).mul_scalar(0.02),
    );
    // Resolution embedding: one row per supported refinement factor
    // (2x, 4x, 8x, 16x).
    store.insert("embed.res", randn(&[4, cfg.embed_dim], seed ^ 0x03).mul_scalar(0.02));
}

/// Row index of the resolution embedding for a refinement factor.
pub fn resolution_row(factor: usize) -> usize {
    match factor {
        2 => 0,
        4 => 1,
        8 => 2,
        16 => 3,
        other => panic!("unsupported refinement factor {other} (expected 2/4/8/16)"),
    }
}

/// Extract non-overlapping `p x p` patches of a single-channel plane as a
/// `[N, p^2]` matrix (pure tensor op; inputs are constants on the tape).
pub fn patchify_plane(plane: &Tensor, p: usize) -> Tensor {
    assert_eq!(plane.ndim(), 2, "patchify expects [h, w]");
    let (h, w) = (plane.shape()[0], plane.shape()[1]);
    assert!(h % p == 0 && w % p == 0, "{h}x{w} not divisible by patch {p}");
    let (hp, wp) = (h / p, w / p);
    let src = plane.data();
    let mut out = Vec::with_capacity(hp * wp * p * p);
    for py in 0..hp {
        for px in 0..wp {
            for dy in 0..p {
                for dx in 0..p {
                    out.push(src[(py * p + dy) * w + px * p + dx]);
                }
            }
        }
    }
    Tensor::from_vec(vec![hp * wp, p * p], out)
}

/// Inverse of [`patchify_plane`]: `[N, p^2]` back to `[h, w]`.
pub fn unpatchify_plane(tokens: &Tensor, hp: usize, wp: usize, p: usize) -> Tensor {
    assert_eq!(tokens.shape(), &[hp * wp, p * p]);
    let (h, w) = (hp * p, wp * p);
    let src = tokens.data();
    let mut out = vec![0.0f32; h * w];
    for py in 0..hp {
        for px in 0..wp {
            let row = (py * wp + px) * p * p;
            for dy in 0..p {
                for dx in 0..p {
                    out[(py * p + dy) * w + px * p + dx] = src[row + dy * p + dx];
                }
            }
        }
    }
    Tensor::from_vec(vec![h, w], out)
}

/// The element permutation that rearranges a `[N, p^2 * C]` token matrix
/// into a `[C, h, w]` image, for use with gather-based reshuffling on the
/// tape (the decoder's differentiable un-patchify).
pub fn unpatchify_permutation(hp: usize, wp: usize, p: usize, c: usize) -> Vec<usize> {
    let (h, w) = (hp * p, wp * p);
    let mut perm = Vec::with_capacity(c * h * w);
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                let (py, dy) = (y / p, y % p);
                let (px, dx) = (x / p, x % p);
                let n = py * wp + px;
                let col = (dy * p + dx) * c + ci;
                perm.push(n * (p * p * c) + col);
            }
        }
    }
    perm
}

/// 2-D sinusoidal positional embedding `[N, D]` over an `hp x wp` token
/// grid: half the channels encode y, half encode x.
pub fn sincos_positions(hp: usize, wp: usize, d: usize) -> Tensor {
    assert!(d.is_multiple_of(4), "embed dim must be divisible by 4 for 2-D sin-cos");
    let quarter = d / 4;
    let mut out = Vec::with_capacity(hp * wp * d);
    for y in 0..hp {
        for x in 0..wp {
            for (coord, _) in [(y as f32, 0usize), (x as f32, 1)] {
                for k in 0..quarter {
                    let freq = 1.0f32 / 10_000f32.powf(k as f32 / quarter as f32);
                    out.push((coord * freq).sin());
                    out.push((coord * freq).cos());
                }
            }
        }
    }
    Tensor::from_vec(vec![hp * wp, d], out)
}

/// Tokenize every variable of a `[C, h, w]` input: returns the per-variable
/// token matrices `[N, D]` with variable embeddings added.
pub fn tokenize<E: Exec>(ex: &E, cfg: &ModelConfig, input: &Tensor) -> Vec<E::Value> {
    assert_eq!(input.ndim(), 3, "input must be [C, h, w]");
    let c = input.shape()[0];
    assert_eq!(c, cfg.in_channels, "input channels {c} != config {}", cfg.in_channels);
    let w_embed = ex.param("embed.w");
    let b_embed = ex.param("embed.b");
    let var_embed = ex.param("embed.var");
    (0..c)
        .map(|ci| {
            let plane = input.slice_axis(0, ci, 1).into_reshape(vec![input.shape()[1], input.shape()[2]]);
            let patches = ex.constant(patchify_plane(&plane, cfg.patch));
            let tok = ex.linear(&patches, &w_embed, Some(&b_embed));
            let ve = ex.slice_axis(&var_embed, 0, ci, 1); // [1, D] broadcasts over N
            ex.add(&tok, &ve)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::Binder;
    use orbit2_autograd::Tape;

    #[test]
    fn patchify_roundtrip() {
        let plane = Tensor::arange(48).reshape(vec![6, 8]);
        let p = patchify_plane(&plane, 2);
        assert_eq!(p.shape(), &[12, 4]);
        let back = unpatchify_plane(&p, 3, 4, 2);
        back.assert_close(&plane, 0.0);
    }

    #[test]
    fn patchify_layout_is_row_major_patches() {
        let plane = Tensor::arange(16).reshape(vec![4, 4]);
        let p = patchify_plane(&plane, 2);
        // First patch = rows 0-1, cols 0-1.
        assert_eq!(&p.data()[0..4], &[0.0, 1.0, 4.0, 5.0]);
        // Second patch = rows 0-1, cols 2-3.
        assert_eq!(&p.data()[4..8], &[2.0, 3.0, 6.0, 7.0]);
    }

    #[test]
    fn unpatchify_permutation_matches_plane_roundtrip() {
        // Single channel: gathering with the permutation must equal
        // unpatchify of the same data.
        let (hp, wp, p) = (2usize, 3usize, 2usize);
        let tokens = Tensor::arange(hp * wp * p * p).reshape(vec![hp * wp, p * p]);
        let perm = unpatchify_permutation(hp, wp, p, 1);
        let flat = tokens.data();
        let gathered: Vec<f32> = perm.iter().map(|&i| flat[i]).collect();
        let expect = unpatchify_plane(&tokens, hp, wp, p);
        assert_eq!(gathered, expect.data());
    }

    #[test]
    fn sincos_positions_distinguish_locations() {
        let pos = sincos_positions(4, 4, 16);
        assert_eq!(pos.shape(), &[16, 16]);
        // All rows distinct.
        for i in 0..16 {
            for j in (i + 1)..16 {
                let a = pos.slice_axis(0, i, 1);
                let b = pos.slice_axis(0, j, 1);
                assert!(a.max_abs_diff(&b) > 1e-3, "positions {i} and {j} collide");
            }
        }
        // Bounded in [-1, 1].
        assert!(pos.max_value() <= 1.0 && pos.min_value() >= -1.0);
    }

    #[test]
    fn tokenize_shapes_and_variable_offsets() {
        let cfg = ModelConfig::tiny().with_channels(3, 3);
        let mut store = ParamStore::new();
        init_embed_params(&mut store, &cfg, 1);
        let tape = Tape::new();
        let binder = Binder::new(&tape, &store);
        let input = randn(&[3, 8, 8], 2);
        let tokens = tokenize(&binder, &cfg, &input);
        assert_eq!(tokens.len(), 3);
        for t in &tokens {
            assert_eq!(t.shape(), vec![16, cfg.embed_dim]);
        }
        // Identical planes still produce different tokens thanks to the
        // per-variable embedding.
        let same = Tensor::concat(
            &[&input.slice_axis(0, 0, 1), &input.slice_axis(0, 0, 1), &input.slice_axis(0, 0, 1)],
            0,
        );
        let tokens2 = tokenize(&binder, &cfg, &same);
        assert!(tokens2[0].value().max_abs_diff(&tokens2[1].value()) > 1e-4);
    }

    #[test]
    fn resolution_rows() {
        assert_eq!(resolution_row(2), 0);
        assert_eq!(resolution_row(4), 1);
        assert_eq!(resolution_row(16), 3);
    }

    #[test]
    #[should_panic(expected = "unsupported refinement factor")]
    fn bad_resolution_panics() {
        resolution_row(3);
    }
}
