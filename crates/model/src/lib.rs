//! # orbit2-model
//!
//! The paper's model architectures, built on `orbit2-autograd`:
//!
//! * [`config`] — model-size configurations, including the paper's four
//!   (9.5M / 126M / 1B / 10B) used by the profiler and the scaled-down
//!   trainable twins used for the CPU accuracy experiments;
//! * [`batch`] — cross-request batched inference: one forward over a
//!   row-stacked batch of same-shaped tiles, bit-identical to per-sample
//!   forwards (the serving layer's microbatch kernel);
//! * [`binder`] — binds a [`orbit2_autograd::ParamStore`] onto a tape,
//!   memoizing leaf vars so each parameter gets exactly one gradient slot;
//! * [`exec`] — the execution-context trait ([`exec::Exec`]) every forward
//!   is generic over: tape-recording for training, tape-free for inference;
//! * [`infer`] — the tape-free [`infer::InferenceSession`] context with
//!   session-resident packed weights;
//! * [`embed`] — per-variable patch tokenization, 2-D sinusoidal positions
//!   and the learnable resolution embedding;
//! * [`blocks`] — multi-head self-attention, MLP and transformer blocks,
//!   plus the cross-attention variable aggregation that collapses the
//!   channel axis (paper Fig. 2, purple block);
//! * [`compress`] — the adaptive spatial compression module: quad-tree
//!   structure from Canny edge density, differentiable token pool/unpool;
//! * [`paths`] — the convolutional decoder and the residual convolutional
//!   upsampling path;
//! * [`loss`] — the Bayesian training objective: latitude-weighted MSE
//!   likelihood + Markov-Random-Field total-variation prior;
//! * [`reslim`] — the assembled Reslim model (paper Sec. III-A);
//! * [`baseline`] — the upsample-first baseline ViT (paper Fig. 1), the
//!   comparator of Table II(a);
//! * [`profiler`] — analytic parameter/FLOP accounting (the stand-in for
//!   the DeepSpeed profiler) feeding the cluster simulator.

pub mod baseline;
pub mod batch;
pub mod binder;
pub mod blocks;
pub mod compress;
pub mod config;
pub mod embed;
pub mod exec;
pub mod infer;
pub mod loss;
pub mod paths;
pub mod profiler;
pub mod reslim;

pub use baseline::BaselineVit;
pub use batch::forward_batch;
pub use binder::Binder;
pub use config::ModelConfig;
pub use exec::Exec;
pub use infer::{InferenceSession, SessionActivation, SessionPrecision, SessionValue};
pub use loss::{bayesian_loss, BayesianLossCfg};
pub use profiler::ModelProfile;
pub use reslim::ReslimModel;
