//! The convolutional decoder (tokens → high-resolution image) and the
//! residual convolutional upsampling path (paper Fig. 2, right side).
//!
//! Both are linear-complexity convolutional stacks: the residual path is
//! exactly the "lightweight convolutional layers with linear complexity"
//! that carries the upsampling *outside* the ViT, and the decoder is the
//! "convolutional layers and linear projections" that reconstruct the
//! output.

use crate::config::ModelConfig;
use crate::embed::unpatchify_permutation;
use crate::exec::Exec;
use orbit2_autograd::ParamStore;
use orbit2_tensor::conv::ConvGeom;
use orbit2_tensor::random::{kaiming, xavier};
use orbit2_tensor::Tensor;

/// Hidden channel width of the decoder and residual convolutions: scales
/// with the embedding so model capacity differentiates in the image-space
/// stages too (the fine-texture memory lives here).
pub fn path_hidden(cfg: &ModelConfig) -> usize {
    (cfg.embed_dim / 2).clamp(8, 64)
}

/// Register decoder parameters.
pub fn init_decoder_params(store: &mut ParamStore, cfg: &ModelConfig, seed: u64) {
    let p2 = cfg.patch * cfg.patch;
    let hidden = path_hidden(cfg);
    store.insert(
        "dec.proj.w",
        xavier(&[p2 * hidden, cfg.embed_dim], seed ^ 0x30),
    );
    store.insert("dec.proj.b", Tensor::zeros(vec![p2 * hidden]));
    store.insert(
        "dec.conv.w",
        kaiming(&[cfg.out_channels, hidden, 3, 3], seed ^ 0x31),
    );
    store.insert("dec.conv.b", Tensor::zeros(vec![cfg.out_channels]));
}

/// Register residual-path parameters.
pub fn init_residual_params(store: &mut ParamStore, cfg: &ModelConfig, seed: u64) {
    let hidden = path_hidden(cfg);
    store.insert(
        "res.conv1.w",
        kaiming(&[hidden, cfg.in_channels, 3, 3], seed ^ 0x40),
    );
    store.insert("res.conv1.b", Tensor::zeros(vec![hidden]));
    store.insert(
        "res.conv2.w",
        kaiming(&[cfg.out_channels, hidden, 3, 3], seed ^ 0x41),
    );
    store.insert("res.conv2.b", Tensor::zeros(vec![cfg.out_channels]));
}

/// Rearrange a `[rows, cols]` value into a new flat shape by an element
/// permutation (`out[i] = flat(in)[perm[i]]`), differentiably on the tape.
pub fn permute_elements<E: Exec>(
    ex: &E,
    v: &E::Value,
    perm: Vec<usize>,
    out_shape: Vec<usize>,
) -> E::Value {
    let n: usize = ex.shape(v).iter().product();
    let m: usize = out_shape.iter().product();
    assert_eq!(perm.len(), m);
    let flat = ex.reshape(v, vec![n, 1]);
    ex.reshape(&ex.gather_rows(&flat, perm), out_shape)
}

/// Decode ViT tokens `[N, D]` on an `hp x wp` grid into a high-resolution
/// `[C_out, hp*p*factor, wp*p*factor]` image.
pub fn decode<E: Exec>(
    ex: &E,
    cfg: &ModelConfig,
    tokens: &E::Value,
    hp: usize,
    wp: usize,
) -> E::Value {
    assert_eq!(ex.shape(tokens)[0], hp * wp, "token/grid mismatch");
    let p = cfg.patch;
    // [N, D] -> [N, p^2 * hidden]
    let projected =
        ex.linear(tokens, &ex.param("dec.proj.w"), Some(&ex.param("dec.proj.b")));
    // Rearrange to [hidden, h, w] at input resolution.
    let (h, w) = (hp * p, wp * p);
    let hidden = path_hidden(cfg);
    let perm = unpatchify_permutation(hp, wp, p, hidden);
    let img = permute_elements(ex, &projected, perm, vec![1, hidden, h, w]);
    // Upsample to output resolution and refine with a 3x3 conv.
    let up = ex.resize_bilinear(&ex.gelu(&img), h * cfg.scale_factor, w * cfg.scale_factor);
    let out = ex.conv2d(
        &up,
        &ex.param("dec.conv.w"),
        Some(&ex.param("dec.conv.b")),
        ConvGeom::same(3),
    );
    let (oh, ow) = (h * cfg.scale_factor, w * cfg.scale_factor);
    ex.reshape(&out, vec![cfg.out_channels, oh, ow])
}

/// The residual path: raw input `[C_in, h, w]` → conv → bilinear upsample →
/// conv → `[C_out, H, W]` coarse approximation added to the ViT output.
pub fn residual_path<E: Exec>(ex: &E, cfg: &ModelConfig, input: &Tensor) -> E::Value {
    assert_eq!(input.ndim(), 3);
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    assert_eq!(c, cfg.in_channels);
    let x = ex.constant(input.reshape(vec![1, c, h, w]));
    let hid = ex.gelu(&ex.conv2d(
        &x,
        &ex.param("res.conv1.w"),
        Some(&ex.param("res.conv1.b")),
        ConvGeom::same(3),
    ));
    let up = ex.resize_bilinear(&hid, h * cfg.scale_factor, w * cfg.scale_factor);
    let out = ex.conv2d(
        &up,
        &ex.param("res.conv2.w"),
        Some(&ex.param("res.conv2.b")),
        ConvGeom::same(3),
    );
    ex.reshape(&out, vec![cfg.out_channels, h * cfg.scale_factor, w * cfg.scale_factor])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::Binder;
    use orbit2_autograd::Tape;
    use orbit2_tensor::random::randn;

    fn cfg() -> ModelConfig {
        ModelConfig::tiny().with_channels(5, 3)
    }

    fn store(cfg: &ModelConfig) -> ParamStore {
        let mut s = ParamStore::new();
        init_decoder_params(&mut s, cfg, 1);
        init_residual_params(&mut s, cfg, 1);
        s
    }

    #[test]
    fn decode_shape() {
        let cfg = cfg();
        let s = store(&cfg);
        let tape = Tape::new();
        let binder = Binder::new(&tape, &s);
        let tokens = tape.constant(randn(&[4 * 6, cfg.embed_dim], 2));
        let img = decode(&binder, &cfg, &tokens, 4, 6);
        // hp=4, wp=6, patch=2, factor=4: output 32 x 48.
        assert_eq!(img.shape(), vec![3, 32, 48]);
        assert!(img.value().all_finite());
    }

    #[test]
    fn residual_shape_and_gradients() {
        let cfg = cfg();
        let s = store(&cfg);
        let tape = Tape::new();
        let binder = Binder::new(&tape, &s);
        let input = randn(&[5, 8, 12], 3);
        let out = residual_path(&binder, &cfg, &input);
        assert_eq!(out.shape(), vec![3, 32, 48]);
        let loss = out.square().sum();
        let grads = tape.backward(loss);
        let gm = binder.grad_map(&grads);
        for name in ["res.conv1.w", "res.conv2.w", "res.conv1.b", "res.conv2.b"] {
            assert!(gm[name].data().iter().any(|&v| v != 0.0), "{name} got no gradient");
        }
    }

    #[test]
    fn residual_responds_to_input() {
        // Different inputs must give different residual approximations
        // (it is a function of the raw input, not a bias).
        let cfg = cfg();
        let s = store(&cfg);
        let tape = Tape::new();
        let binder = Binder::new(&tape, &s);
        let a = residual_path(&binder, &cfg, &randn(&[5, 8, 12], 4)).value();
        let b = residual_path(&binder, &cfg, &randn(&[5, 8, 12], 5)).value();
        assert!(a.max_abs_diff(&b) > 1e-4);
    }

    #[test]
    fn permute_elements_roundtrip() {
        let empty = ParamStore::new();
        let tape = Tape::new();
        let binder = Binder::new(&tape, &empty);
        let x = tape.leaf(randn(&[3, 4], 6));
        let perm: Vec<usize> = (0..12).rev().collect();
        let y = permute_elements(&binder, &x, perm, vec![12]);
        let inv: Vec<usize> = (0..12).rev().collect();
        let z = permute_elements(&binder, &y, inv, vec![3, 4]);
        z.value().assert_close(&x.value(), 0.0);
        // Gradients survive the double permutation.
        let grads = tape.backward(z.square().sum());
        assert!(grads.get(x).is_some());
    }

    #[test]
    fn decode_gradients_reach_projection() {
        let cfg = cfg();
        let s = store(&cfg);
        let tape = Tape::new();
        let binder = Binder::new(&tape, &s);
        let tokens = tape.constant(randn(&[24, cfg.embed_dim], 7));
        let loss = decode(&binder, &cfg, &tokens, 4, 6).square().sum();
        let grads = tape.backward(loss);
        let gm = binder.grad_map(&grads);
        assert!(gm["dec.proj.w"].data().iter().any(|&v| v != 0.0));
        assert!(gm["dec.conv.w"].data().iter().any(|&v| v != 0.0));
    }
}
