//! The upsample-first baseline ViT (paper Fig. 1) — the architecture of
//! Prithvi/ClimateLearn-style downscaling foundation models that Table II(a)
//! compares against.
//!
//! The coarse input is bilinearly upsampled to the *output* resolution
//! before any transformer work, channels are aggregated by a shallow
//! convolution, and the ViT then runs over the full high-resolution token
//! grid — `factor^2` times more tokens than Reslim sees, with quadratic
//! attention on top. This is precisely the cost the Reslim design removes.

use crate::blocks::{init_block_params, transformer_block};
use crate::config::ModelConfig;
use crate::embed::{sincos_positions, unpatchify_permutation};
use crate::exec::Exec;
use crate::infer::InferenceSession;
use crate::paths::permute_elements;
use orbit2_autograd::ParamStore;
use orbit2_tensor::conv::ConvGeom;
use orbit2_tensor::random::{kaiming, xavier};
use orbit2_tensor::resize::{resize, ResizeMode};
use orbit2_tensor::Tensor;

/// Channel width of the shallow aggregation convolution.
const AGG_HIDDEN: usize = 16;

/// The baseline model: configuration plus named parameters.
pub struct BaselineVit {
    /// Architecture hyper-parameters (shared struct with Reslim).
    pub cfg: ModelConfig,
    /// Trainable parameters.
    pub params: ParamStore,
}

impl BaselineVit {
    /// Initialize with deterministic weights.
    pub fn new(cfg: ModelConfig, seed: u64) -> Self {
        let mut params = ParamStore::new();
        params.insert(
            "agg.conv1.w",
            kaiming(&[AGG_HIDDEN, cfg.in_channels, 3, 3], seed ^ 0x50),
        );
        params.insert("agg.conv1.b", Tensor::zeros(vec![AGG_HIDDEN]));
        params.insert("agg.conv2.w", kaiming(&[1, AGG_HIDDEN, 3, 3], seed ^ 0x51));
        params.insert("agg.conv2.b", Tensor::zeros(vec![1]));
        let p2 = cfg.patch * cfg.patch;
        params.insert("embed.w", xavier(&[cfg.embed_dim, p2], seed ^ 0x52));
        params.insert("embed.b", Tensor::zeros(vec![cfg.embed_dim]));
        for l in 0..cfg.layers {
            init_block_params(&mut params, &cfg, &format!("blk{l}"), seed.wrapping_add(100 + l as u64));
        }
        // Per-variable projection heads back to image space.
        params.insert(
            "head.w",
            xavier(&[p2 * cfg.out_channels, cfg.embed_dim], seed ^ 0x53),
        );
        params.insert("head.b", Tensor::zeros(vec![p2 * cfg.out_channels]));
        Self { cfg, params }
    }

    /// Trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.params.num_elements()
    }

    /// Sequence length the baseline pays for an input of `h x w` pixels:
    /// the ViT runs at *output* resolution.
    pub fn sequence_len(&self, h: usize, w: usize) -> usize {
        let (oh, ow) = (h * self.cfg.scale_factor, w * self.cfg.scale_factor);
        (oh / self.cfg.patch) * (ow / self.cfg.patch)
    }

    /// Prepare a tape-free inference context over this model's weights.
    pub fn session(&self) -> InferenceSession {
        InferenceSession::prepare(&self.params)
    }

    /// Like [`session`](Self::session), but with the weight set held at a
    /// reduced storage precision (see [`InferenceSession::prepare_at`]).
    pub fn session_at(&self, precision: crate::infer::SessionPrecision) -> InferenceSession {
        InferenceSession::prepare_at(&self.params, precision)
    }

    /// Like [`session_at`](Self::session_at), additionally choosing the
    /// activation precision the session streams at (see
    /// [`InferenceSession::prepare_with`]).
    pub fn session_with(
        &self,
        precision: crate::infer::SessionPrecision,
        activation: crate::infer::SessionActivation,
    ) -> InferenceSession {
        InferenceSession::prepare_with(&self.params, precision, activation)
    }

    /// Forward pass on one `[C_in, h, w]` sample → `[C_out, H, W]`.
    pub fn forward<E: Exec>(&self, ex: &E, input: &Tensor) -> E::Value {
        let cfg = &self.cfg;
        assert_eq!(input.ndim(), 3);
        let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        assert_eq!(c, cfg.in_channels);
        let (oh, ow) = (h * cfg.scale_factor, w * cfg.scale_factor);

        // Upsample FIRST (the defining property of this architecture), as a
        // constant preprocessing of the input.
        let up = resize(input, oh, ow, ResizeMode::Bilinear);

        // Shallow convolutional channel aggregation to one feature plane.
        let x = ex.constant(up.into_reshape(vec![1, c, oh, ow]));
        let hid = ex.gelu(&ex.conv2d(
            &x,
            &ex.param("agg.conv1.w"),
            Some(&ex.param("agg.conv1.b")),
            ConvGeom::same(3),
        ));
        let aggregated = ex.conv2d(
            &hid,
            &ex.param("agg.conv2.w"),
            Some(&ex.param("agg.conv2.b")),
            ConvGeom::same(3),
        );

        // Tokenize the full-resolution plane: the long sequence.
        let (hp, wp) = (oh / cfg.patch, ow / cfg.patch);
        let plane_patches = to_patches(ex, &aggregated, oh, ow, cfg.patch);
        let mut z =
            ex.linear(&plane_patches, &ex.param("embed.w"), Some(&ex.param("embed.b")));
        let pos = ex.constant(sincos_positions(hp, wp, cfg.embed_dim));
        z = ex.add(&z, &pos);

        for l in 0..cfg.layers {
            z = transformer_block(ex, cfg, &format!("blk{l}"), &z);
        }

        // Project back to image space per output variable.
        let out_tokens = ex.linear(&z, &ex.param("head.w"), Some(&ex.param("head.b")));
        let perm = unpatchify_permutation(hp, wp, cfg.patch, cfg.out_channels);
        permute_elements(ex, &out_tokens, perm, vec![cfg.out_channels, oh, ow])
    }
}

/// Differentiably extract `p x p` patches of a `[1, 1, H, W]` value as
/// `[N, p^2]` — a fixed element permutation.
fn to_patches<E: Exec>(ex: &E, plane: &E::Value, h: usize, w: usize, p: usize) -> E::Value {
    let (hp, wp) = (h / p, w / p);
    // Build the permutation: token n, slot (dy*p + dx) <- pixel.
    let mut perm = Vec::with_capacity(h * w);
    for py in 0..hp {
        for px in 0..wp {
            for dy in 0..p {
                for dx in 0..p {
                    perm.push((py * p + dy) * w + px * p + dx);
                }
            }
        }
    }
    permute_elements(ex, plane, perm, vec![hp * wp, p * p])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::Binder;
    use crate::embed::patchify_plane;
    use orbit2_autograd::Tape;
    use orbit2_tensor::random::randn;

    fn model() -> BaselineVit {
        BaselineVit::new(ModelConfig::tiny().with_channels(4, 3), 13)
    }

    #[test]
    fn forward_shape() {
        let m = model();
        let tape = Tape::new();
        let binder = Binder::new(&tape, &m.params);
        let input = randn(&[4, 4, 8], 1);
        let pred = m.forward(&binder, &input);
        assert_eq!(pred.shape(), vec![3, 16, 32]);
        assert!(pred.value().all_finite());
    }

    #[test]
    fn sequence_is_factor_squared_times_reslim() {
        let m = model();
        let (h, w) = (8, 16);
        let baseline_seq = m.sequence_len(h, w);
        let reslim_seq = (h / m.cfg.patch) * (w / m.cfg.patch);
        assert_eq!(baseline_seq, reslim_seq * m.cfg.scale_factor * m.cfg.scale_factor);
    }

    #[test]
    fn all_parameters_receive_gradients() {
        let m = model();
        let tape = Tape::new();
        let binder = Binder::new(&tape, &m.params);
        let input = randn(&[4, 4, 4], 2);
        let loss = m.forward(&binder, &input).square().sum();
        let grads = tape.backward(loss);
        let gm = binder.grad_map(&grads);
        assert_eq!(gm.len(), m.params.len());
        for (name, g) in gm.iter() {
            assert!(g.data().iter().any(|&x| x != 0.0), "{name} has zero gradient");
        }
    }

    #[test]
    fn patch_extraction_matches_tensor_path() {
        // The differentiable to_patches must agree with the plain
        // patchify_plane used by Reslim's tokenizer.
        let empty = ParamStore::new();
        let tape = Tape::new();
        let binder = Binder::new(&tape, &empty);
        let plane = randn(&[6, 8], 3);
        let v = tape.constant(plane.reshape(vec![1, 1, 6, 8]));
        let got = to_patches(&binder, &v, 6, 8, 2).value();
        let expect = patchify_plane(&plane, 2);
        got.assert_close(&expect, 0.0);
    }
}
