//! The tape-free inference context.
//!
//! [`InferenceSession`] is the deployment counterpart of [`crate::Binder`]:
//! it implements [`Exec`] directly on pooled tensors, so a forward pass
//! records no tape nodes, stores no pre-activations, and accumulates no
//! backward closures. Weights are taken from the model's `ParamStore` once
//! at session creation; every linear weight additionally gets its `W^T`
//! packed into microkernel strips right there ([`PackedWeight`]) and the
//! pack stays resident for the session's lifetime — the per-call pack that
//! `matmul_bias_act` pays on the tape path disappears entirely.
//!
//! A session is `Send + Sync`: the TILES inference driver shares one
//! session across its rayon tile workers, so the pack cost is paid once
//! per *model*, not once per tile or per sample.
//!
//! ## Activation precision
//!
//! Orthogonal to the resident *weight* precision, a session prepared with
//! [`SessionActivation::Bf16`] streams its **activations** as `u16` BF16
//! words ([`Bf16Tensor`]): [`SessionValue`] carries either storage, and a
//! per-op policy table ([`SessionOp::class`]) decides what each op does with
//! its output. The uniform semantic is *widen → f32 compute → narrow*: an
//! op widens BF16 inputs exactly (every BF16 value is f32-representable),
//! computes in f32, and rounds the result back to BF16 words — except for
//! the ops the policy pins to f32 output (the image-space resamplers) and
//! the pure data movers, which preserve their input's storage. The
//! memory-bound ops never materialize the f32 middle step: the bf16 GEMM
//! ([`orbit2_tensor::qgemm`]), layer norm, softmax, GELU, residual add and
//! scale all read/write words directly and are bit-identical to the
//! widen-compute-narrow semantic by construction (see
//! [`orbit2_tensor::bf16_act`]).

use crate::exec::{Exec, RowGroups};
use orbit2_autograd::ParamStore;
use orbit2_tensor::bf16_act::{
    add_bf16, gelu_bf16, layer_norm_rows_bf16, scale_bf16, softmax_rows_bf16, Bf16Tensor,
};
use orbit2_tensor::conv::{conv2d, ConvGeom};
use orbit2_tensor::fused::{layer_norm_rows, matmul_bias_act_cached, Activation, PackedWeight};
use orbit2_tensor::matmul::packed_eligible;
use orbit2_tensor::qgemm;
use orbit2_tensor::resize::{resize, ResizeMode};
use orbit2_tensor::Tensor;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Storage precision of a session's resident weights — re-exported from the
/// tensor crate so model-level callers need not name the kernel layer.
pub use orbit2_tensor::fused::WeightPrecision as SessionPrecision;

/// Storage precision of the activations flowing through a session —
/// re-exported like [`SessionPrecision`].
pub use orbit2_tensor::fused::ActivationPrecision as SessionActivation;

/// Activation storage behind a [`SessionValue`].
#[derive(Clone, Debug)]
enum Storage {
    F32(Tensor),
    Bf16(Bf16Tensor),
}

/// A value flowing through a tape-free forward pass: f32 or BF16 activation
/// storage plus, for session-resident weights, the shared `W^T` pack.
///
/// Cloning is cheap (a COW tensor handle or an `Arc` bump, plus an `Arc`
/// bump for the pack). Intermediate results carry no pack; only values
/// returned by [`Exec::param`] on a session do, which is exactly where
/// [`Exec::linear_act`] looks for it. Parameters are always `F32` storage —
/// weight precision lives in the packs, not in this enum.
#[derive(Clone, Debug)]
pub struct SessionValue {
    storage: Storage,
    pack: Option<Arc<PackedWeight>>,
}

impl SessionValue {
    fn plain(tensor: Tensor) -> Self {
        SessionValue { storage: Storage::F32(tensor), pack: None }
    }

    fn narrow(words: Bf16Tensor) -> Self {
        SessionValue { storage: Storage::Bf16(words), pack: None }
    }

    /// The value as an f32 tensor: a COW clone for f32 storage, an exact
    /// widening for BF16 storage.
    pub fn tensor(&self) -> Tensor {
        match &self.storage {
            Storage::F32(t) => t.clone(),
            Storage::Bf16(b) => b.widen(),
        }
    }

    /// Unwrap into an f32 tensor (widening BF16 storage exactly).
    pub fn into_tensor(self) -> Tensor {
        match self.storage {
            Storage::F32(t) => t,
            Storage::Bf16(b) => b.widen(),
        }
    }

    /// True when the value is held as BF16 words.
    pub fn is_bf16(&self) -> bool {
        matches!(self.storage, Storage::Bf16(_))
    }

    fn shape(&self) -> &[usize] {
        match &self.storage {
            Storage::F32(t) => t.shape(),
            Storage::Bf16(b) => b.shape(),
        }
    }
}

/// The ops a session executes, named for the activation-precision policy
/// table ([`SessionOp::class`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionOp {
    /// [`Exec::constant`] — entry of fresh data into the session.
    Constant,
    /// Elementwise/broadcast adds (residual connections).
    Add,
    /// Elementwise/broadcast multiply.
    Mul,
    /// Multiply by a scalar.
    Scale,
    /// GELU activation.
    Gelu,
    /// Plain matmul.
    Matmul,
    /// `a @ b^T`.
    MatmulNt,
    /// Row softmax.
    SoftmaxLast,
    /// Axis slice.
    SliceAxis,
    /// Axis concatenation.
    Concat,
    /// Row gather.
    GatherRows,
    /// Metadata reshape.
    Reshape,
    /// Fused linear (the GEMM path).
    LinearAct,
    /// Layer norm with affine.
    LayerNorm,
    /// 2-d convolution.
    Conv2d,
    /// Bilinear resize.
    ResizeBilinear,
    /// Token-compression pooling.
    PoolRows,
    /// Token-decompression unpooling.
    UnpoolRows,
}

/// What a bf16-activation session does with an op's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Output narrows to BF16 words — the bandwidth win.
    Narrow,
    /// Output stays f32 regardless of input storage: numerically sensitive
    /// ops where rounding the result measurably moves R²/SSIM.
    PinnedF32,
    /// Output keeps the input's storage — pure data movement that neither
    /// rounds nor widens values.
    Preserve,
}

impl SessionOp {
    /// The per-op activation-precision policy.
    ///
    /// Compute ops narrow; the image-space resamplers ([`Conv2d`]
    /// (Self::Conv2d), [`ResizeBilinear`](Self::ResizeBilinear)) are pinned
    /// to f32 output — they sit on the decode and residual paths where every
    /// output pixel is a weighted blend of neighbors, and rounding those
    /// blends is where tiled SSIM degrades first; the data movers
    /// (slice/concat/gather/reshape) preserve storage since narrowing
    /// already-narrow data is the identity and widening costs bandwidth for
    /// nothing.
    pub fn class(self) -> OpClass {
        match self {
            SessionOp::Conv2d | SessionOp::ResizeBilinear => OpClass::PinnedF32,
            SessionOp::SliceAxis
            | SessionOp::Concat
            | SessionOp::GatherRows
            | SessionOp::Reshape => OpClass::Preserve,
            _ => OpClass::Narrow,
        }
    }
}

/// Tape-free execution context holding session-resident weights and packs.
pub struct InferenceSession {
    values: BTreeMap<String, SessionValue>,
    precision: SessionPrecision,
    activation: SessionActivation,
}

impl InferenceSession {
    /// Snapshot a parameter store for inference, packing every eligible
    /// linear weight (2-d, enough output features for the packed
    /// microkernel) exactly once. Biases, layer-norm gains and conv
    /// kernels are held unpacked — no GEMM ever consumes them as `B`.
    pub fn prepare(store: &ParamStore) -> Self {
        Self::prepare_at(store, SessionPrecision::F32)
    }

    /// [`prepare`](Self::prepare) at a reduced weight precision, activations
    /// staying f32.
    pub fn prepare_at(store: &ParamStore, precision: SessionPrecision) -> Self {
        Self::prepare_with(store, precision, SessionActivation::F32)
    }

    /// Snapshot a parameter store at a weight precision *and* an activation
    /// precision.
    ///
    /// The resident tensor for every parameter is the *dequantized* value of
    /// whatever the packs hold, so eligible GEMMs (through the pack) and
    /// every other path (fallback GEMM shapes, convs, layer norms, biases)
    /// see identical weight values:
    ///
    /// * `Bf16` rounds **every** parameter through [`Tensor::to_bf16`] —
    ///   the whole weight set is bf16 end to end, and the per-layer `u16`
    ///   packs are exactly those rounded values ([`crate::infer`]'s packs
    ///   round-trip bit-identically).
    /// * `Int8` quantizes only the packable 2-d linear weights (per-output-
    ///   channel symmetric codes); biases, norm gains and conv kernels stay
    ///   f32 — no kernel consumes int8 for them, so quantizing would cost
    ///   quality for zero bytes saved on the hot path.
    ///
    /// Parameters always enter ops at full resident precision regardless of
    /// `activation` (they are `F32` storage); the activation knob governs
    /// only the values flowing *between* ops.
    pub fn prepare_with(
        store: &ParamStore,
        precision: SessionPrecision,
        activation: SessionActivation,
    ) -> Self {
        let values = store
            .iter()
            .map(|(name, t)| {
                let value = match precision {
                    SessionPrecision::F32 => {
                        let pack = PackedWeight::pack(t).map(Arc::new);
                        SessionValue { storage: Storage::F32(t.clone()), pack }
                    }
                    SessionPrecision::Bf16 => {
                        let rounded = t.to_bf16();
                        let pack = PackedWeight::pack_at(&rounded, precision).map(Arc::new);
                        SessionValue { storage: Storage::F32(rounded), pack }
                    }
                    SessionPrecision::Int8 => match PackedWeight::pack_at(t, precision) {
                        Some(pack) => {
                            let tensor = pack.dequantized().expect("int8 pack dequantizes");
                            SessionValue {
                                storage: Storage::F32(tensor),
                                pack: Some(Arc::new(pack)),
                            }
                        }
                        None => SessionValue::plain(t.clone()),
                    },
                };
                (name.clone(), value)
            })
            .collect();
        Self { values, precision, activation }
    }

    /// The weight precision this session was prepared at.
    pub fn precision(&self) -> SessionPrecision {
        self.precision
    }

    /// The activation precision this session streams at.
    pub fn activation(&self) -> SessionActivation {
        self.activation
    }

    /// Number of weights with a resident pack.
    pub fn packed_weights(&self) -> usize {
        self.values.values().filter(|v| v.pack.is_some()).count()
    }

    /// Apply the policy table to a freshly computed f32 result: narrow it
    /// when this is a bf16-activation session and the op's class says so.
    fn finish(&self, op: SessionOp, t: Tensor) -> SessionValue {
        match (self.activation, op.class()) {
            (SessionActivation::Bf16, OpClass::Narrow) => {
                SessionValue::narrow(Bf16Tensor::from_tensor(&t))
            }
            _ => SessionValue::plain(t),
        }
    }

    /// Data-mover output: keep the input's storage. `like_bf16` is the input
    /// storage; the narrow is lossless because `t` holds bf16-valued data.
    fn preserve(&self, like_bf16: bool, t: Tensor) -> SessionValue {
        if like_bf16 {
            SessionValue::narrow(Bf16Tensor::from_tensor(&t))
        } else {
            SessionValue::plain(t)
        }
    }
}

impl Exec for InferenceSession {
    type Value = SessionValue;

    fn param(&self, name: &str) -> SessionValue {
        self.values
            .get(name)
            .unwrap_or_else(|| panic!("unknown parameter {name}"))
            .clone()
    }

    fn constant(&self, t: Tensor) -> SessionValue {
        self.finish(SessionOp::Constant, t)
    }

    fn tensor(&self, v: &SessionValue) -> Tensor {
        v.tensor()
    }

    fn shape(&self, v: &SessionValue) -> Vec<usize> {
        v.shape().to_vec()
    }

    fn add(&self, a: &SessionValue, b: &SessionValue) -> SessionValue {
        if let (Storage::Bf16(ba), Storage::Bf16(bb)) = (&a.storage, &b.storage) {
            if ba.shape() == bb.shape() {
                let sum = add_bf16(ba.words(), bb.words());
                return SessionValue::narrow(Bf16Tensor::from_words(ba.shape().to_vec(), sum));
            }
        }
        self.finish(SessionOp::Add, a.tensor().add(&b.tensor()))
    }

    fn mul(&self, a: &SessionValue, b: &SessionValue) -> SessionValue {
        self.finish(SessionOp::Mul, a.tensor().mul(&b.tensor()))
    }

    fn scale(&self, a: &SessionValue, s: f32) -> SessionValue {
        if let Storage::Bf16(b) = &a.storage {
            let out = scale_bf16(b.words(), s);
            return SessionValue::narrow(Bf16Tensor::from_words(b.shape().to_vec(), out));
        }
        self.finish(SessionOp::Scale, a.tensor().mul_scalar(s))
    }

    fn gelu(&self, a: &SessionValue) -> SessionValue {
        if let Storage::Bf16(b) = &a.storage {
            let out = gelu_bf16(b.words());
            return SessionValue::narrow(Bf16Tensor::from_words(b.shape().to_vec(), out));
        }
        self.finish(SessionOp::Gelu, a.tensor().gelu())
    }

    fn matmul(&self, a: &SessionValue, b: &SessionValue) -> SessionValue {
        self.finish(SessionOp::Matmul, a.tensor().matmul(&b.tensor()))
    }

    fn matmul_nt(&self, a: &SessionValue, b: &SessionValue) -> SessionValue {
        self.finish(SessionOp::MatmulNt, a.tensor().matmul_nt(&b.tensor()))
    }

    fn softmax_last(&self, a: &SessionValue) -> SessionValue {
        if let Storage::Bf16(b) = &a.storage {
            let inner = *b.shape().last().expect("softmax on 0-d value");
            let mut words = b.words().to_vec();
            softmax_rows_bf16(&mut words, inner);
            return SessionValue::narrow(Bf16Tensor::from_words(b.shape().to_vec(), words));
        }
        self.finish(SessionOp::SoftmaxLast, a.tensor().softmax_last())
    }

    fn slice_axis(&self, a: &SessionValue, axis: usize, start: usize, len: usize) -> SessionValue {
        self.preserve(a.is_bf16(), a.tensor().slice_axis(axis, start, len))
    }

    fn concat(&self, parts: &[SessionValue], axis: usize) -> SessionValue {
        let tensors: Vec<Tensor> = parts.iter().map(|p| p.tensor()).collect();
        let refs: Vec<&Tensor> = tensors.iter().collect();
        let all_bf16 = !parts.is_empty() && parts.iter().all(SessionValue::is_bf16);
        self.preserve(all_bf16, Tensor::concat(&refs, axis))
    }

    fn gather_rows(&self, a: &SessionValue, indices: Vec<usize>) -> SessionValue {
        self.preserve(a.is_bf16(), a.tensor().gather_rows(&indices))
    }

    fn reshape(&self, a: &SessionValue, shape: Vec<usize>) -> SessionValue {
        match &a.storage {
            Storage::Bf16(b) => SessionValue::narrow(b.reshape(shape)),
            Storage::F32(t) => SessionValue::plain(t.reshape(shape)),
        }
    }

    fn linear_act(
        &self,
        x: &SessionValue,
        w: &SessionValue,
        bias: Option<&SessionValue>,
        act: Activation,
    ) -> SessionValue {
        // BF16 activations against a resident reduced pack stream words on
        // both sides of the GEMM — no f32 copy of A or C ever exists. The
        // eligibility gate is the same `packed_eligible` the f32 cached path
        // uses, so per-sample and batched rows take the same branch exactly
        // when the microbatcher's branch-stability check says they may stack.
        if let Storage::Bf16(xa) = &x.storage {
            if xa.ndim() == 2 {
                let (m, kx) = (xa.shape()[0], xa.shape()[1]);
                let bt = bias.map(|b| b.tensor());
                let bd = bt.as_ref().map(|b| b.data());
                match w.pack.as_deref() {
                    Some(PackedWeight::Bf16(pw))
                        if kx == pw.k() && packed_eligible(m, kx, pw.n()) =>
                    {
                        let mut out = vec![0u16; m * pw.n()];
                        qgemm::gemm_bf16_act_fused(xa.words(), m, kx, pw, bd, act, &mut out);
                        return SessionValue::narrow(Bf16Tensor::from_words(
                            vec![m, pw.n()],
                            out,
                        ));
                    }
                    Some(PackedWeight::I8(pw))
                        if kx == pw.k() && packed_eligible(m, kx, pw.n()) =>
                    {
                        let mut out = vec![0u16; m * pw.n()];
                        qgemm::gemm_i8_act_fused(xa.words(), m, kx, pw, bd, act, &mut out);
                        return SessionValue::narrow(Bf16Tensor::from_words(
                            vec![m, pw.n()],
                            out,
                        ));
                    }
                    _ => {}
                }
            }
        }
        let xt = x.tensor();
        let wt = w.tensor();
        let bt = bias.map(|b| b.tensor());
        let y = matmul_bias_act_cached(&xt, &wt, w.pack.as_deref(), bt.as_ref(), act);
        self.finish(SessionOp::LinearAct, y)
    }

    fn layer_norm(
        &self,
        x: &SessionValue,
        gamma: &SessionValue,
        beta: &SessionValue,
        eps: f32,
    ) -> SessionValue {
        if let Storage::Bf16(b) = &x.storage {
            // The single-code-path bf16 kernel *defines* the bf16-activation
            // layer norm (the f32 kernel's statistics are SIMD-mode
            // dependent; this one is not), with the affine fused into the
            // narrow-write pass.
            let d = *b.shape().last().expect("layer_norm on 0-d value");
            let rows = b.len() / d;
            let (g, be) = (gamma.tensor(), beta.tensor());
            let out = layer_norm_rows_bf16(b.words(), rows, d, eps, g.data(), be.data());
            return SessionValue::narrow(Bf16Tensor::from_words(b.shape().to_vec(), out));
        }
        let v = x.tensor();
        let last = v.ndim() - 1;
        let d = v.shape()[last];
        let rows = v.len() / d;
        let (norm, _inv_std) = layer_norm_rows(v.data(), rows, d, eps);
        let norm_t = Tensor::from_vec(v.shape().to_vec(), norm);
        self.finish(SessionOp::LayerNorm, norm_t.mul(&gamma.tensor()).add(&beta.tensor()))
    }

    fn conv2d(
        &self,
        x: &SessionValue,
        w: &SessionValue,
        bias: Option<&SessionValue>,
        geom: ConvGeom,
    ) -> SessionValue {
        let (xt, wt) = (x.tensor(), w.tensor());
        let bt = bias.map(|b| b.tensor());
        self.finish(SessionOp::Conv2d, conv2d(&xt, &wt, bt.as_ref(), geom))
    }

    fn resize_bilinear(&self, x: &SessionValue, out_h: usize, out_w: usize) -> SessionValue {
        self.finish(
            SessionOp::ResizeBilinear,
            resize(&x.tensor(), out_h, out_w, ResizeMode::Bilinear),
        )
    }

    fn pool_rows(&self, x: &SessionValue, groups: &RowGroups) -> SessionValue {
        self.finish(SessionOp::PoolRows, x.tensor().pool_rows(groups))
    }

    fn unpool_rows(&self, x: &SessionValue, groups: &RowGroups, total_rows: usize) -> SessionValue {
        self.finish(SessionOp::UnpoolRows, x.tensor().unpool_rows(groups, total_rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit2_tensor::random::randn;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn session_is_shareable_across_threads() {
        assert_send_sync::<InferenceSession>();
        assert_send_sync::<SessionValue>();
    }

    #[test]
    fn prepare_packs_linear_weights_only() {
        let mut store = ParamStore::new();
        store.insert("mlp.w1", randn(&[64, 32], 1)); // packable linear weight
        store.insert("ln.g", Tensor::ones(vec![32])); // 1-d: never packed
        store.insert("conv.w", randn(&[8, 4, 3, 3], 2)); // 4-d: never packed
        store.insert("embed.res", randn(&[4, 32], 3)); // n < LANES: never packed
        let session = InferenceSession::prepare(&store);
        let expected = if orbit2_tensor::simd::enabled() { 1 } else { 0 };
        assert_eq!(session.packed_weights(), expected);
        assert_eq!(session.activation(), SessionActivation::F32);
    }

    #[test]
    #[should_panic(expected = "unknown parameter")]
    fn unknown_param_panics_like_store() {
        let session = InferenceSession::prepare(&ParamStore::new());
        let _ = session.param("nope");
    }

    #[test]
    fn bf16_session_rounds_every_parameter() {
        let mut store = ParamStore::new();
        store.insert("mlp.w1", randn(&[64, 32], 1));
        store.insert("ln.g", randn(&[32], 2));
        store.insert("conv.w", randn(&[8, 4, 3, 3], 3));
        let session = InferenceSession::prepare_at(&store, SessionPrecision::Bf16);
        assert_eq!(session.precision(), SessionPrecision::Bf16);
        for name in ["mlp.w1", "ln.g", "conv.w"] {
            let got = session.param(name);
            let expect = store.get(name).to_bf16();
            got.tensor().assert_close(&expect, 0.0);
        }
        // The 2-d linear weight is packed regardless of SIMD mode (the
        // quantized values must not depend on it); others never pack.
        assert_eq!(session.packed_weights(), 1);
    }

    #[test]
    fn int8_session_resident_tensor_matches_pack() {
        use orbit2_tensor::fused::{PackedWeight, WeightPrecision};
        let mut store = ParamStore::new();
        store.insert("mlp.w1", randn(&[64, 32], 1));
        store.insert("bias", randn(&[64], 2));
        let session = InferenceSession::prepare_at(&store, SessionPrecision::Int8);
        let w = session.param("mlp.w1");
        let pw = PackedWeight::pack_at(store.get("mlp.w1"), WeightPrecision::Int8).unwrap();
        w.tensor().assert_close(&pw.dequantized().unwrap(), 0.0);
        // Non-packable parameters stay f32 untouched in an int8 session.
        session.param("bias").tensor().assert_close(store.get("bias"), 0.0);
    }

    #[test]
    fn policy_table_pins_resamplers_and_preserves_movers() {
        for op in [
            SessionOp::Add,
            SessionOp::LinearAct,
            SessionOp::LayerNorm,
            SessionOp::SoftmaxLast,
            SessionOp::Gelu,
            SessionOp::PoolRows,
            SessionOp::Constant,
        ] {
            assert_eq!(op.class(), OpClass::Narrow, "{op:?}");
        }
        assert_eq!(SessionOp::Conv2d.class(), OpClass::PinnedF32);
        assert_eq!(SessionOp::ResizeBilinear.class(), OpClass::PinnedF32);
        for op in
            [SessionOp::SliceAxis, SessionOp::Concat, SessionOp::GatherRows, SessionOp::Reshape]
        {
            assert_eq!(op.class(), OpClass::Preserve, "{op:?}");
        }
    }

    #[test]
    fn bf16_session_ops_follow_policy() {
        let mut store = ParamStore::new();
        store.insert("w", randn(&[32, 16], 1));
        store.insert("conv.w", randn(&[2, 3, 3, 3], 2));
        let session =
            InferenceSession::prepare_with(&store, SessionPrecision::F32, SessionActivation::Bf16);
        assert_eq!(session.activation(), SessionActivation::Bf16);

        // Constants narrow on entry (that IS the activation quantization).
        let c = session.constant(randn(&[4, 16], 3));
        assert!(c.is_bf16());
        // Round-trip through f32 is exact once narrowed.
        let again = session.constant(c.tensor());
        assert_eq!(c.tensor().data(), again.tensor().data());

        // Compute ops narrow...
        assert!(session.add(&c, &c).is_bf16());
        assert!(session.gelu(&c).is_bf16());
        assert!(session.scale(&c, 0.5).is_bf16());
        assert!(session.softmax_last(&c).is_bf16());
        let w = session.param("w");
        assert!(!w.is_bf16(), "params stay f32 storage");
        assert!(session.linear_act(&c, &w, None, Activation::Identity).is_bf16());

        // ...data movers preserve...
        assert!(session.slice_axis(&c, 0, 0, 2).is_bf16());
        assert!(session.reshape(&c, vec![16, 4]).is_bf16());
        assert!(session.gather_rows(&c, vec![0, 1]).is_bf16());
        assert!(session.concat(&[c.clone(), c], 0).is_bf16());

        // ...and the resamplers pin to f32.
        let img = session.constant(randn(&[1, 3, 8, 8], 4));
        let cw = session.param("conv.w");
        assert!(!session.conv2d(&img, &cw, None, ConvGeom::same(3)).is_bf16());
        assert!(!session.resize_bilinear(&img, 16, 16).is_bf16());
    }

    #[test]
    fn f32_session_never_narrows() {
        let store = ParamStore::new();
        let session = InferenceSession::prepare(&store);
        let c = session.constant(randn(&[4, 16], 5));
        assert!(!c.is_bf16());
        assert!(!session.add(&c, &c).is_bf16());
        assert!(!session.softmax_last(&c).is_bf16());
    }

    #[test]
    fn bf16_linear_native_path_matches_widened_fallback() {
        use orbit2_tensor::bf16_act::Bf16Tensor;
        // Both weight precisions with a bf16 activation input: the native
        // words-in/words-out GEMM must agree bitwise with widening the input
        // and narrowing the f32 result (the uniform op semantic).
        let mut store = ParamStore::new();
        store.insert("w", randn(&[48, 40], 11));
        store.insert("b", randn(&[48], 12));
        for wp in [SessionPrecision::Bf16, SessionPrecision::Int8] {
            let session =
                InferenceSession::prepare_with(&store, wp, SessionActivation::Bf16);
            let x = session.constant(randn(&[9, 40], 13));
            assert!(x.is_bf16());
            let w = session.param("w");
            let b = session.param("b");
            let y = session.linear_act(&x, &w, Some(&b), Activation::Gelu);
            let y_ref = matmul_bias_act_cached(
                &x.tensor(),
                &w.tensor(),
                w.pack.as_deref(),
                Some(&b.tensor()),
                Activation::Gelu,
            );
            let expect = Bf16Tensor::from_tensor(&y_ref);
            let got = Bf16Tensor::from_tensor(&y.tensor());
            assert_eq!(got.words(), expect.words(), "{wp:?}");
        }
    }
}
