//! The tape-free inference context.
//!
//! [`InferenceSession`] is the deployment counterpart of [`crate::Binder`]:
//! it implements [`Exec`] directly on pooled tensors, so a forward pass
//! records no tape nodes, stores no pre-activations, and accumulates no
//! backward closures. Weights are taken from the model's `ParamStore` once
//! at session creation; every linear weight additionally gets its `W^T`
//! packed into microkernel strips right there ([`PackedWeight`]) and the
//! pack stays resident for the session's lifetime — the per-call pack that
//! `matmul_bias_act` pays on the tape path disappears entirely.
//!
//! A session is `Send + Sync`: the TILES inference driver shares one
//! session across its rayon tile workers, so the pack cost is paid once
//! per *model*, not once per tile or per sample.

use crate::exec::Exec;
use orbit2_autograd::ParamStore;
use orbit2_tensor::conv::{conv2d, ConvGeom};
use orbit2_tensor::fused::{layer_norm_rows, matmul_bias_act_cached, Activation, PackedWeight};
use orbit2_tensor::resize::{resize, ResizeMode};
use orbit2_tensor::Tensor;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Storage precision of a session's resident weights — re-exported from the
/// tensor crate so model-level callers need not name the kernel layer.
pub use orbit2_tensor::fused::WeightPrecision as SessionPrecision;

/// A value flowing through a tape-free forward pass: the tensor plus, for
/// session-resident weights, the shared `W^T` pack.
///
/// Cloning is cheap (a COW tensor handle and an `Arc` bump). Intermediate
/// results carry no pack; only values returned by [`Exec::param`] on a
/// session do, which is exactly where [`Exec::linear_act`] looks for it.
#[derive(Clone, Debug)]
pub struct SessionValue {
    tensor: Tensor,
    pack: Option<Arc<PackedWeight>>,
}

impl SessionValue {
    fn plain(tensor: Tensor) -> Self {
        SessionValue { tensor, pack: None }
    }

    /// The underlying tensor.
    pub fn tensor(&self) -> &Tensor {
        &self.tensor
    }

    /// Unwrap into the underlying tensor.
    pub fn into_tensor(self) -> Tensor {
        self.tensor
    }
}

/// Tape-free execution context holding session-resident weights and packs.
pub struct InferenceSession {
    values: BTreeMap<String, SessionValue>,
    precision: SessionPrecision,
}

impl InferenceSession {
    /// Snapshot a parameter store for inference, packing every eligible
    /// linear weight (2-d, enough output features for the packed
    /// microkernel) exactly once. Biases, layer-norm gains and conv
    /// kernels are held unpacked — no GEMM ever consumes them as `B`.
    pub fn prepare(store: &ParamStore) -> Self {
        Self::prepare_at(store, SessionPrecision::F32)
    }

    /// Snapshot a parameter store at a reduced weight precision.
    ///
    /// The resident tensor for every parameter is the *dequantized* value of
    /// whatever the packs hold, so eligible GEMMs (through the pack) and
    /// every other path (fallback GEMM shapes, convs, layer norms, biases)
    /// see identical weight values:
    ///
    /// * `Bf16` rounds **every** parameter through [`Tensor::to_bf16`] —
    ///   the whole weight set is bf16 end to end, and the per-layer `u16`
    ///   packs are exactly those rounded values ([`crate::infer`]'s packs
    ///   round-trip bit-identically).
    /// * `Int8` quantizes only the packable 2-d linear weights (per-output-
    ///   channel symmetric codes); biases, norm gains and conv kernels stay
    ///   f32 — no kernel consumes int8 for them, so quantizing would cost
    ///   quality for zero bytes saved on the hot path.
    ///
    /// Activations stay f32 everywhere; precision applies to weights only.
    pub fn prepare_at(store: &ParamStore, precision: SessionPrecision) -> Self {
        let values = store
            .iter()
            .map(|(name, t)| {
                let value = match precision {
                    SessionPrecision::F32 => {
                        let pack = PackedWeight::pack(t).map(Arc::new);
                        SessionValue { tensor: t.clone(), pack }
                    }
                    SessionPrecision::Bf16 => {
                        let rounded = t.to_bf16();
                        let pack = PackedWeight::pack_at(&rounded, precision).map(Arc::new);
                        SessionValue { tensor: rounded, pack }
                    }
                    SessionPrecision::Int8 => match PackedWeight::pack_at(t, precision) {
                        Some(pack) => {
                            let tensor = pack.dequantized().expect("int8 pack dequantizes");
                            SessionValue { tensor, pack: Some(Arc::new(pack)) }
                        }
                        None => SessionValue { tensor: t.clone(), pack: None },
                    },
                };
                (name.clone(), value)
            })
            .collect();
        Self { values, precision }
    }

    /// The weight precision this session was prepared at.
    pub fn precision(&self) -> SessionPrecision {
        self.precision
    }

    /// Number of weights with a resident pack.
    pub fn packed_weights(&self) -> usize {
        self.values.values().filter(|v| v.pack.is_some()).count()
    }
}

impl Exec for InferenceSession {
    type Value = SessionValue;

    fn param(&self, name: &str) -> SessionValue {
        self.values
            .get(name)
            .unwrap_or_else(|| panic!("unknown parameter {name}"))
            .clone()
    }

    fn constant(&self, t: Tensor) -> SessionValue {
        SessionValue::plain(t)
    }

    fn tensor(&self, v: &SessionValue) -> Tensor {
        v.tensor.clone()
    }

    fn shape(&self, v: &SessionValue) -> Vec<usize> {
        v.tensor.shape().to_vec()
    }

    fn add(&self, a: &SessionValue, b: &SessionValue) -> SessionValue {
        SessionValue::plain(a.tensor.add(&b.tensor))
    }

    fn mul(&self, a: &SessionValue, b: &SessionValue) -> SessionValue {
        SessionValue::plain(a.tensor.mul(&b.tensor))
    }

    fn scale(&self, a: &SessionValue, s: f32) -> SessionValue {
        SessionValue::plain(a.tensor.mul_scalar(s))
    }

    fn gelu(&self, a: &SessionValue) -> SessionValue {
        SessionValue::plain(a.tensor.gelu())
    }

    fn matmul(&self, a: &SessionValue, b: &SessionValue) -> SessionValue {
        SessionValue::plain(a.tensor.matmul(&b.tensor))
    }

    fn matmul_nt(&self, a: &SessionValue, b: &SessionValue) -> SessionValue {
        SessionValue::plain(a.tensor.matmul_nt(&b.tensor))
    }

    fn softmax_last(&self, a: &SessionValue) -> SessionValue {
        SessionValue::plain(a.tensor.softmax_last())
    }

    fn slice_axis(&self, a: &SessionValue, axis: usize, start: usize, len: usize) -> SessionValue {
        SessionValue::plain(a.tensor.slice_axis(axis, start, len))
    }

    fn concat(&self, parts: &[SessionValue], axis: usize) -> SessionValue {
        let refs: Vec<&Tensor> = parts.iter().map(|p| &p.tensor).collect();
        SessionValue::plain(Tensor::concat(&refs, axis))
    }

    fn gather_rows(&self, a: &SessionValue, indices: Vec<usize>) -> SessionValue {
        SessionValue::plain(a.tensor.gather_rows(&indices))
    }

    fn reshape(&self, a: &SessionValue, shape: Vec<usize>) -> SessionValue {
        SessionValue::plain(a.tensor.reshape(shape))
    }

    fn linear_act(
        &self,
        x: &SessionValue,
        w: &SessionValue,
        bias: Option<&SessionValue>,
        act: Activation,
    ) -> SessionValue {
        let bt = bias.map(|b| &b.tensor);
        SessionValue::plain(matmul_bias_act_cached(&x.tensor, &w.tensor, w.pack.as_deref(), bt, act))
    }

    fn layer_norm(
        &self,
        x: &SessionValue,
        gamma: &SessionValue,
        beta: &SessionValue,
        eps: f32,
    ) -> SessionValue {
        let v = &x.tensor;
        let last = v.ndim() - 1;
        let d = v.shape()[last];
        let rows = v.len() / d;
        let (norm, _inv_std) = layer_norm_rows(v.data(), rows, d, eps);
        let norm_t = Tensor::from_vec(v.shape().to_vec(), norm);
        SessionValue::plain(norm_t.mul(&gamma.tensor).add(&beta.tensor))
    }

    fn conv2d(
        &self,
        x: &SessionValue,
        w: &SessionValue,
        bias: Option<&SessionValue>,
        geom: ConvGeom,
    ) -> SessionValue {
        let bt = bias.map(|b| &b.tensor);
        SessionValue::plain(conv2d(&x.tensor, &w.tensor, bt, geom))
    }

    fn resize_bilinear(&self, x: &SessionValue, out_h: usize, out_w: usize) -> SessionValue {
        SessionValue::plain(resize(&x.tensor, out_h, out_w, ResizeMode::Bilinear))
    }

    fn pool_rows(&self, x: &SessionValue, groups: &[Vec<usize>]) -> SessionValue {
        SessionValue::plain(x.tensor.pool_rows(groups))
    }

    fn unpool_rows(
        &self,
        x: &SessionValue,
        groups: &[Vec<usize>],
        total_rows: usize,
    ) -> SessionValue {
        SessionValue::plain(x.tensor.unpool_rows(groups, total_rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit2_tensor::random::randn;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn session_is_shareable_across_threads() {
        assert_send_sync::<InferenceSession>();
        assert_send_sync::<SessionValue>();
    }

    #[test]
    fn prepare_packs_linear_weights_only() {
        let mut store = ParamStore::new();
        store.insert("mlp.w1", randn(&[64, 32], 1)); // packable linear weight
        store.insert("ln.g", Tensor::ones(vec![32])); // 1-d: never packed
        store.insert("conv.w", randn(&[8, 4, 3, 3], 2)); // 4-d: never packed
        store.insert("embed.res", randn(&[4, 32], 3)); // n < LANES: never packed
        let session = InferenceSession::prepare(&store);
        let expected = if orbit2_tensor::simd::enabled() { 1 } else { 0 };
        assert_eq!(session.packed_weights(), expected);
    }

    #[test]
    #[should_panic(expected = "unknown parameter")]
    fn unknown_param_panics_like_store() {
        let session = InferenceSession::prepare(&ParamStore::new());
        let _ = session.param("nope");
    }

    #[test]
    fn bf16_session_rounds_every_parameter() {
        let mut store = ParamStore::new();
        store.insert("mlp.w1", randn(&[64, 32], 1));
        store.insert("ln.g", randn(&[32], 2));
        store.insert("conv.w", randn(&[8, 4, 3, 3], 3));
        let session = InferenceSession::prepare_at(&store, SessionPrecision::Bf16);
        assert_eq!(session.precision(), SessionPrecision::Bf16);
        for name in ["mlp.w1", "ln.g", "conv.w"] {
            let got = session.param(name);
            let expect = store.get(name).to_bf16();
            got.tensor().assert_close(&expect, 0.0);
        }
        // The 2-d linear weight is packed regardless of SIMD mode (the
        // quantized values must not depend on it); others never pack.
        assert_eq!(session.packed_weights(), 1);
    }

    #[test]
    fn int8_session_resident_tensor_matches_pack() {
        use orbit2_tensor::fused::{PackedWeight, WeightPrecision};
        let mut store = ParamStore::new();
        store.insert("mlp.w1", randn(&[64, 32], 1));
        store.insert("bias", randn(&[64], 2));
        let session = InferenceSession::prepare_at(&store, SessionPrecision::Int8);
        let w = session.param("mlp.w1");
        let pw = PackedWeight::pack_at(store.get("mlp.w1"), WeightPrecision::Int8).unwrap();
        w.tensor().assert_close(&pw.dequantized().unwrap(), 0.0);
        // Non-packable parameters stay f32 untouched in an int8 session.
        session.param("bias").tensor().assert_close(store.get("bias"), 0.0);
    }
}
