//! Model-size configurations.
//!
//! The paper's Sec. IV lists four configurations: 9.5M (256-dim, 6 layers,
//! 4 heads), 126M (1024-dim, 8 layers, 16 heads), 1B (3072-dim, 8 layers,
//! 24 heads) and 10B (8192-dim, 11 layers, 32 heads). Those are used by the
//! profiler and the cluster simulator. The CPU accuracy experiments train
//! *scaled-down twins* (`tiny`/`small`) that preserve the size ordering.

use serde::{Deserialize, Serialize};

/// Architecture hyper-parameters shared by Reslim and the baseline ViT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Embedding dimension.
    pub embed_dim: usize,
    /// Number of transformer blocks.
    pub layers: usize,
    /// Attention heads (must divide `embed_dim`).
    pub heads: usize,
    /// Patch edge in pixels (paper uses 2x2 patches).
    pub patch: usize,
    /// MLP expansion ratio.
    pub mlp_ratio: usize,
    /// Input channels (physical variables).
    pub in_channels: usize,
    /// Output channels (downscaled variables).
    pub out_channels: usize,
    /// Spatial refinement factor (4x throughout the paper).
    pub scale_factor: usize,
}

impl ModelConfig {
    /// The paper's 9.5M configuration.
    pub fn paper_9_5m() -> Self {
        Self { embed_dim: 256, layers: 6, heads: 4, ..Self::base() }
    }

    /// The paper's 126M configuration.
    pub fn paper_126m() -> Self {
        Self { embed_dim: 1024, layers: 8, heads: 16, ..Self::base() }
    }

    /// The paper's 1B configuration.
    pub fn paper_1b() -> Self {
        Self { embed_dim: 3072, layers: 8, heads: 24, ..Self::base() }
    }

    /// The paper's 10B configuration.
    pub fn paper_10b() -> Self {
        Self { embed_dim: 8192, layers: 11, heads: 32, ..Self::base() }
    }

    /// CPU-trainable twin of the small model (stands in for 9.5M).
    pub fn tiny() -> Self {
        Self { embed_dim: 32, layers: 2, heads: 2, ..Self::base() }
    }

    /// CPU-trainable twin of the larger model (stands in for 126M).
    pub fn small() -> Self {
        Self { embed_dim: 64, layers: 3, heads: 4, ..Self::base() }
    }

    fn base() -> Self {
        Self {
            embed_dim: 256,
            layers: 6,
            heads: 4,
            patch: 2,
            mlp_ratio: 4,
            in_channels: 23,
            out_channels: 3,
            scale_factor: 4,
        }
    }

    /// Override channel counts (e.g. 7-channel DAYMET tasks).
    pub fn with_channels(mut self, inputs: usize, outputs: usize) -> Self {
        self.in_channels = inputs;
        self.out_channels = outputs;
        self
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        assert_eq!(self.embed_dim % self.heads, 0, "heads must divide embed_dim");
        self.embed_dim / self.heads
    }

    /// Analytic parameter count of the Reslim architecture (transformer
    /// blocks + cross-attention aggregation + embeddings + decoder +
    /// residual path). Matches the standard `12 L D^2` transformer estimate
    /// plus the Reslim extras.
    pub fn param_count(&self) -> u64 {
        let d = self.embed_dim as u64;
        let p2 = (self.patch * self.patch) as u64;
        let blocks = self.layers as u64 * (4 * d * d + 2 * self.mlp_ratio as u64 * d * d + 9 * d);
        let patch_embed = p2 * d + d + self.in_channels as u64 * d;
        let xattn = 4 * d * d + 4 * d;
        let res_embed = 4 * d; // resolution embedding rows for factors 2/4/8/16
        let decoder_hidden = (self.embed_dim as u64 / 2).clamp(8, 64);
        let decoder = d * p2 * decoder_hidden
            + decoder_hidden
            + decoder_hidden * self.out_channels as u64 * 9
            + self.out_channels as u64;
        let residual = self.in_channels as u64 * decoder_hidden * 9
            + decoder_hidden
            + decoder_hidden * self.out_channels as u64 * 9
            + self.out_channels as u64;
        blocks + patch_embed + xattn + res_embed + decoder + residual
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_match_reported_parameter_counts() {
        // 12 L D^2 dominates; the paper's labels are approximate. Assert the
        // analytic counts land in the right regime.
        let p95 = ModelConfig::paper_9_5m().param_count();
        assert!(p95 > 4_000_000 && p95 < 12_000_000, "9.5M config: {p95}");
        let p126 = ModelConfig::paper_126m().param_count();
        assert!(p126 > 95_000_000 && p126 < 140_000_000, "126M config: {p126}");
        let p1b = ModelConfig::paper_1b().param_count();
        assert!(p1b > 0.85e9 as u64 && p1b < 1.2e9 as u64, "1B config: {p1b}");
        let p10b = ModelConfig::paper_10b().param_count();
        assert!(p10b > 8.5e9 as u64 && p10b < 11e9 as u64, "10B config: {p10b}");
    }

    #[test]
    fn size_ordering_preserved() {
        let sizes = [
            ModelConfig::tiny().param_count(),
            ModelConfig::small().param_count(),
            ModelConfig::paper_9_5m().param_count(),
            ModelConfig::paper_126m().param_count(),
            ModelConfig::paper_1b().param_count(),
            ModelConfig::paper_10b().param_count(),
        ];
        for pair in sizes.windows(2) {
            assert!(pair[0] < pair[1], "sizes must be strictly increasing: {sizes:?}");
        }
    }

    #[test]
    fn head_dim_divides() {
        for c in [
            ModelConfig::paper_9_5m(),
            ModelConfig::paper_126m(),
            ModelConfig::paper_1b(),
            ModelConfig::paper_10b(),
            ModelConfig::tiny(),
            ModelConfig::small(),
        ] {
            assert_eq!(c.head_dim() * c.heads, c.embed_dim);
        }
    }

    #[test]
    fn with_channels_updates_both() {
        let c = ModelConfig::tiny().with_channels(7, 3);
        assert_eq!(c.in_channels, 7);
        assert_eq!(c.out_channels, 3);
    }
}
