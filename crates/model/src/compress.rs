//! The adaptive spatial compression module (paper Sec. III-A, Fig. 3).
//!
//! The aggregated feature tokens are projected back to image space; a
//! quad-tree over the Canny edge density of that image decides which token
//! regions can be merged. The *structure* decision is non-differentiable
//! (computed on plain tensors, like the CPU-side quad-tree construction in
//! the paper's Sec. III-C); the pooling/unpooling of token features runs
//! through the execution context ([`Exec::pool_rows`] / [`Exec::unpool_rows`]),
//! so it is differentiable when training and tape-free at inference.

use crate::exec::{Exec, RowGroups};
use orbit2_imaging::quadtree::{QuadTree, QuadTreeParams};
use orbit2_tensor::Tensor;

/// The compression decision for one sample: token groups per quad-tree leaf.
#[derive(Debug, Clone)]
pub struct CompressionPlan {
    /// For each kept (merged) token: the indices of the uniform-grid tokens
    /// it pools. Shared (`Arc`) so every forward that replays the plan —
    /// and the microbatcher that merges plans across samples — clones a
    /// pointer, not the nested vectors.
    pub groups: RowGroups,
    /// Token-grid height.
    pub hp: usize,
    /// Token-grid width.
    pub wp: usize,
}

impl CompressionPlan {
    /// Identity plan: every token is its own group (compression disabled;
    /// the module "acts as an identity function").
    pub fn identity(hp: usize, wp: usize) -> Self {
        Self {
            groups: (0..hp * wp).map(|i| vec![i]).collect::<Vec<_>>().into(),
            hp,
            wp,
        }
    }

    /// Build a plan from the aggregated feature image (token-space
    /// saliency), targeting roughly `target_compression`x token reduction
    /// by searching the density threshold.
    pub fn adaptive(feature_img: &Tensor, target_compression: f32) -> Self {
        assert_eq!(feature_img.ndim(), 2);
        let (hp, wp) = (feature_img.shape()[0], feature_img.shape()[1]);
        assert!(target_compression >= 1.0);
        if target_compression == 1.0 {
            return Self::identity(hp, wp);
        }
        // Search over density thresholds for the closest token reduction.
        let mut best: Option<(f32, QuadTree)> = None;
        for thresh in [0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.8] {
            let qt = QuadTree::build(
                feature_img.data(),
                hp,
                wp,
                QuadTreeParams {
                    density_threshold: thresh,
                    min_patch: 1,
                    max_patch: (hp.max(wp)).next_power_of_two(),
                    ..Default::default()
                },
            );
            let ratio = (hp * wp) as f32 / qt.token_count() as f32;
            let err = (ratio.ln() - target_compression.ln()).abs();
            match &best {
                Some((e, _)) if *e <= err => {}
                _ => best = Some((err, qt)),
            }
        }
        let (_, qt) = best.unwrap();
        let groups: Vec<Vec<usize>> = qt
            .patches
            .iter()
            .map(|p| {
                let mut g = Vec::with_capacity(p.area());
                for y in p.y0..p.y0 + p.h {
                    for x in p.x0..p.x0 + p.w {
                        g.push(y * wp + x);
                    }
                }
                g
            })
            .collect();
        Self { groups: groups.into(), hp, wp }
    }

    /// Number of tokens after compression.
    pub fn compressed_len(&self) -> usize {
        self.groups.len()
    }

    /// Achieved compression ratio.
    pub fn ratio(&self) -> f32 {
        (self.hp * self.wp) as f32 / self.groups.len() as f32
    }

    /// Compress token features `[N, D]` to `[M, D]` (differentiable on the
    /// tape context).
    pub fn compress<E: Exec>(&self, ex: &E, tokens: &E::Value) -> E::Value {
        assert_eq!(ex.shape(tokens)[0], self.hp * self.wp, "token count mismatch");
        ex.pool_rows(tokens, &self.groups)
    }

    /// Decompress `[M, D]` back to the full `[N, D]` grid.
    pub fn decompress<E: Exec>(&self, ex: &E, compressed: &E::Value) -> E::Value {
        ex.unpool_rows(compressed, &self.groups, self.hp * self.wp)
    }
}

/// Project aggregated tokens to a token-space saliency image by mean over
/// the embedding dimension (plain tensor op — structure decisions are
/// outside the gradient graph).
pub fn token_saliency(tokens: &Tensor, hp: usize, wp: usize) -> Tensor {
    assert_eq!(tokens.shape()[0], hp * wp);
    tokens.mean_axis(1).into_reshape(vec![hp, wp])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::Binder;
    use orbit2_autograd::{ParamStore, Tape};
    use orbit2_tensor::random::randn;

    fn edge_image(hp: usize, wp: usize) -> Tensor {
        Tensor::from_vec(
            vec![hp, wp],
            (0..hp * wp).map(|i| if i % wp >= wp / 2 { 1.0 } else { 0.0 }).collect(),
        )
    }

    #[test]
    fn identity_plan_is_lossless() {
        let plan = CompressionPlan::identity(4, 4);
        assert_eq!(plan.compressed_len(), 16);
        assert_eq!(plan.ratio(), 1.0);
        let store = ParamStore::new();
        let tape = Tape::new();
        let binder = Binder::new(&tape, &store);
        let x = tape.constant(randn(&[16, 8], 1));
        let y = plan.decompress(&binder, &plan.compress(&binder, &x));
        y.value().assert_close(&x.value(), 1e-6);
    }

    #[test]
    fn adaptive_plan_hits_target_roughly() {
        let img = edge_image(32, 32);
        let plan = CompressionPlan::adaptive(&img, 4.0);
        assert!(plan.ratio() > 1.5, "got ratio {}", plan.ratio());
        assert!(plan.compressed_len() < 1024);
        // Groups must partition all tokens.
        let mut seen = vec![false; 1024];
        for g in plan.groups.iter() {
            for &i in g {
                assert!(!seen[i], "token {i} in two groups");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn smooth_regions_get_bigger_groups() {
        let img = edge_image(32, 32);
        let plan = CompressionPlan::adaptive(&img, 8.0);
        // The largest group should be much bigger than the smallest.
        let max = plan.groups.iter().map(Vec::len).max().unwrap();
        let min = plan.groups.iter().map(Vec::len).min().unwrap();
        assert!(max >= 4 * min.max(1), "max {max}, min {min}");
    }

    #[test]
    fn compress_decompress_preserves_group_means() {
        let img = edge_image(16, 16);
        let plan = CompressionPlan::adaptive(&img, 4.0);
        let store = ParamStore::new();
        let tape = Tape::new();
        let binder = Binder::new(&tape, &store);
        let x = tape.constant(randn(&[256, 4], 3));
        let rec = plan.decompress(&binder, &plan.compress(&binder, &x)).value();
        // Within each group the reconstruction is the group's mean.
        let xv = x.value();
        for g in plan.groups.iter() {
            let mut mean = [0.0f32; 4];
            for &i in g {
                for (m, &v) in mean.iter_mut().zip(&xv.data()[i * 4..(i + 1) * 4]) {
                    *m += v / g.len() as f32;
                }
            }
            for &i in g {
                for (j, &m) in mean.iter().enumerate() {
                    assert!((rec.data()[i * 4 + j] - m).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn gradients_flow_through_compression() {
        let img = edge_image(8, 8);
        let plan = CompressionPlan::adaptive(&img, 2.0);
        let store = ParamStore::new();
        let tape = Tape::new();
        let binder = Binder::new(&tape, &store);
        let x = tape.leaf(randn(&[64, 4], 5));
        let loss = plan.decompress(&binder, &plan.compress(&binder, &x)).square().sum();
        let grads = tape.backward(loss);
        let g = grads.get(x).expect("gradient must reach tokens");
        assert!(g.data().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn saliency_shape() {
        let t = randn(&[12, 6], 7);
        let s = token_saliency(&t, 3, 4);
        assert_eq!(s.shape(), &[3, 4]);
    }
}
