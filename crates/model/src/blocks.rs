//! Transformer building blocks: multi-head self-attention, MLP, the
//! pre-norm block, and the cross-attention variable aggregation that
//! collapses the channel axis into a single token sequence (paper Fig. 2).
//!
//! Every forward here is generic over the execution context ([`Exec`]):
//! the same code records on the tape when given a [`crate::Binder`] and
//! runs tape-free on pooled tensors when given a
//! [`crate::infer::InferenceSession`].

use crate::config::ModelConfig;
use crate::exec::Exec;
use orbit2_autograd::ParamStore;
use orbit2_tensor::random::xavier;
use orbit2_tensor::Tensor;

/// Register parameters for one transformer block under `prefix`.
pub fn init_block_params(store: &mut ParamStore, cfg: &ModelConfig, prefix: &str, seed: u64) {
    let d = cfg.embed_dim;
    let hidden = cfg.mlp_ratio * d;
    for (i, name) in ["wq", "wk", "wv", "wo"].iter().enumerate() {
        store.insert(format!("{prefix}.attn.{name}"), xavier(&[d, d], seed ^ (i as u64 + 1)));
    }
    store.insert(format!("{prefix}.attn.bo"), Tensor::zeros(vec![d]));
    store.insert(format!("{prefix}.ln1.g"), Tensor::ones(vec![d]));
    store.insert(format!("{prefix}.ln1.b"), Tensor::zeros(vec![d]));
    store.insert(format!("{prefix}.ln2.g"), Tensor::ones(vec![d]));
    store.insert(format!("{prefix}.ln2.b"), Tensor::zeros(vec![d]));
    store.insert(format!("{prefix}.mlp.w1"), xavier(&[hidden, d], seed ^ 0x10));
    store.insert(format!("{prefix}.mlp.b1"), Tensor::zeros(vec![hidden]));
    store.insert(format!("{prefix}.mlp.w2"), xavier(&[d, hidden], seed ^ 0x11));
    store.insert(format!("{prefix}.mlp.b2"), Tensor::zeros(vec![d]));
}

/// Multi-head self-attention over `[N, D]` tokens.
pub fn self_attention<E: Exec>(
    ex: &E,
    cfg: &ModelConfig,
    prefix: &str,
    x: &E::Value,
) -> E::Value {
    let d = cfg.embed_dim;
    let dh = cfg.head_dim();
    // Q/K/V projections through the fused linear path (packed `x W^T`
    // kernel, no weight transpose materialized).
    let q = ex.linear(x, &ex.param(&format!("{prefix}.attn.wq")), None);
    let k = ex.linear(x, &ex.param(&format!("{prefix}.attn.wk")), None);
    let v = ex.linear(x, &ex.param(&format!("{prefix}.attn.wv")), None);
    let scale = 1.0 / (dh as f32).sqrt();
    let mut heads = Vec::with_capacity(cfg.heads);
    for h in 0..cfg.heads {
        let qh = ex.slice_axis(&q, 1, h * dh, dh);
        let kh = ex.slice_axis(&k, 1, h * dh, dh);
        let vh = ex.slice_axis(&v, 1, h * dh, dh);
        // Q K^T straight from row-major storage via the nt kernel.
        let scores = ex.scale(&ex.matmul_nt(&qh, &kh), scale);
        let probs = ex.softmax_last(&scores);
        heads.push(ex.matmul(&probs, &vh));
    }
    let concat = ex.concat(&heads, 1);
    debug_assert_eq!(ex.shape(&concat)[1], d);
    ex.linear(
        &concat,
        &ex.param(&format!("{prefix}.attn.wo")),
        Some(&ex.param(&format!("{prefix}.attn.bo"))),
    )
}

/// Two-layer GELU MLP. The first layer runs GEMM + bias + GELU as one
/// fused kernel (the tape context additionally stores the pre-activation
/// for backward; the inference context skips that).
pub fn mlp<E: Exec>(ex: &E, prefix: &str, x: &E::Value) -> E::Value {
    let h = ex.linear_act(
        x,
        &ex.param(&format!("{prefix}.mlp.w1")),
        Some(&ex.param(&format!("{prefix}.mlp.b1"))),
        orbit2_tensor::fused::Activation::Gelu,
    );
    ex.linear(
        &h,
        &ex.param(&format!("{prefix}.mlp.w2")),
        Some(&ex.param(&format!("{prefix}.mlp.b2"))),
    )
}

/// Pre-norm transformer block: `x + Attn(LN(x))`, then `x + MLP(LN(x))`.
pub fn transformer_block<E: Exec>(
    ex: &E,
    cfg: &ModelConfig,
    prefix: &str,
    x: &E::Value,
) -> E::Value {
    let n1 = ex.layer_norm(
        x,
        &ex.param(&format!("{prefix}.ln1.g")),
        &ex.param(&format!("{prefix}.ln1.b")),
        1e-5,
    );
    let x = ex.add(x, &self_attention(ex, cfg, prefix, &n1));
    let n2 = ex.layer_norm(
        &x,
        &ex.param(&format!("{prefix}.ln2.g")),
        &ex.param(&format!("{prefix}.ln2.b")),
        1e-5,
    );
    ex.add(&x, &mlp(ex, prefix, &n2))
}

/// Register parameters of the cross-attention variable aggregation.
pub fn init_xattn_params(store: &mut ParamStore, cfg: &ModelConfig, seed: u64) {
    let d = cfg.embed_dim;
    for (i, name) in ["wq", "wk", "wv", "wo"].iter().enumerate() {
        store.insert(format!("xattn.{name}"), xavier(&[d, d], seed ^ (0x20 + i as u64)));
    }
    store.insert("xattn.bo", Tensor::zeros(vec![d]));
}

/// Cross-attention aggregation: per spatial token, attend from the
/// variable-mean query over the `C` per-variable tokens and collapse them
/// into one (paper: "aggregate multi-variable embeddings into a unified
/// representation, effectively collapsing the variable dimension").
pub fn cross_attention_aggregate<E: Exec>(
    ex: &E,
    cfg: &ModelConfig,
    tokens: &[E::Value],
) -> E::Value {
    assert!(!tokens.is_empty());
    let d = cfg.embed_dim;
    let c = tokens.len();
    // Query: mean over variables, projected.
    let mut sum = tokens[0].clone();
    for t in &tokens[1..] {
        sum = ex.add(&sum, t);
    }
    let mean = ex.scale(&sum, 1.0 / c as f32);
    let q = ex.linear(&mean, &ex.param("xattn.wq"), None);
    let scale = 1.0 / (d as f32).sqrt();
    let ones = ex.constant(Tensor::ones(vec![d, 1]));
    let mut scores = Vec::with_capacity(c);
    let mut values = Vec::with_capacity(c);
    for t in tokens {
        let k = ex.linear(t, &ex.param("xattn.wk"), None);
        values.push(ex.linear(t, &ex.param("xattn.wv"), None));
        // Row-wise dot product q·k -> [N, 1].
        scores.push(ex.scale(&ex.matmul(&ex.mul(&q, &k), &ones), scale));
    }
    let probs = ex.softmax_last(&ex.concat(&scores, 1)); // [N, C]
    let mut out: Option<E::Value> = None;
    for (ci, v) in values.iter().enumerate() {
        let p = ex.slice_axis(&probs, 1, ci, 1); // [N, 1] broadcasts over D
        let term = ex.mul(&p, v);
        out = Some(match out {
            Some(acc) => ex.add(&acc, &term),
            None => term,
        });
    }
    ex.linear(&out.unwrap(), &ex.param("xattn.wo"), Some(&ex.param("xattn.bo")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::Binder;
    use crate::infer::InferenceSession;
    use orbit2_autograd::{Tape, Var};
    use orbit2_tensor::random::randn;

    fn setup(cfg: &ModelConfig) -> ParamStore {
        let mut store = ParamStore::new();
        init_block_params(&mut store, cfg, "blk0", 7);
        init_xattn_params(&mut store, cfg, 7);
        store
    }

    #[test]
    fn block_preserves_shape_and_is_finite() {
        let cfg = ModelConfig::tiny();
        let store = setup(&cfg);
        let tape = Tape::new();
        let binder = Binder::new(&tape, &store);
        let x = tape.constant(randn(&[10, cfg.embed_dim], 1));
        let y = transformer_block(&binder, &cfg, "blk0", &x);
        assert_eq!(y.shape(), vec![10, cfg.embed_dim]);
        assert!(y.value().all_finite());
    }

    #[test]
    fn block_matches_between_contexts_bitwise() {
        // The same block through the tape and through a session must agree
        // to the last bit (shared kernels, shared branch structure).
        let cfg = ModelConfig::tiny();
        let store = setup(&cfg);
        let input = randn(&[10, cfg.embed_dim], 9);

        let tape = Tape::new();
        let binder = Binder::new(&tape, &store);
        let x = tape.constant(input.clone());
        let taped = transformer_block(&binder, &cfg, "blk0", &x).value();

        let session = InferenceSession::prepare(&store);
        let xs = Exec::constant(&session, input);
        let free = transformer_block(&session, &cfg, "blk0", &xs).into_tensor();

        assert_eq!(taped.data(), free.data());
    }

    #[test]
    fn block_is_trainable_end_to_end() {
        let cfg = ModelConfig::tiny();
        let store = setup(&cfg);
        let tape = Tape::new();
        let binder = Binder::new(&tape, &store);
        let x = tape.constant(randn(&[6, cfg.embed_dim], 2));
        let y = transformer_block(&binder, &cfg, "blk0", &x);
        let loss = y.square().sum();
        let grads = tape.backward(loss);
        let gm = binder.grad_map(&grads);
        // Every block parameter receives a non-trivial gradient.
        for name in [
            "blk0.attn.wq",
            "blk0.attn.wo",
            "blk0.mlp.w1",
            "blk0.mlp.w2",
            "blk0.ln1.g",
        ] {
            let g = &gm[name];
            assert!(g.data().iter().any(|&x| x != 0.0), "{name} has zero gradient");
            assert!(g.all_finite(), "{name} has non-finite gradient");
        }
    }

    #[test]
    fn attention_head_slices_cover_dim() {
        // Heads x head_dim == embed_dim guaranteed by config; smoke-check
        // a 4-head tiny config through attention.
        let cfg = ModelConfig { heads: 4, embed_dim: 32, ..ModelConfig::tiny() };
        let mut store = ParamStore::new();
        init_block_params(&mut store, &cfg, "blk0", 3);
        let tape = Tape::new();
        let binder = Binder::new(&tape, &store);
        let x = tape.constant(randn(&[5, 32], 3));
        let y = self_attention(&binder, &cfg, "blk0", &x);
        assert_eq!(y.shape(), vec![5, 32]);
    }

    #[test]
    fn xattn_collapses_variables() {
        let cfg = ModelConfig::tiny().with_channels(5, 3);
        let store = setup(&cfg);
        let tape = Tape::new();
        let binder = Binder::new(&tape, &store);
        let tokens: Vec<Var<'_>> = (0..5)
            .map(|i| tape.constant(randn(&[8, cfg.embed_dim], 10 + i)))
            .collect();
        let agg = cross_attention_aggregate(&binder, &cfg, &tokens);
        assert_eq!(agg.shape(), vec![8, cfg.embed_dim]);
        assert!(agg.value().all_finite());
    }

    #[test]
    fn xattn_attends_not_averages() {
        // The aggregation must differ from a plain mean of the value
        // projections (i.e. the softmax actually weights variables).
        let cfg = ModelConfig::tiny().with_channels(3, 3);
        let store = setup(&cfg);
        let tape = Tape::new();
        let binder = Binder::new(&tape, &store);
        let tokens: Vec<Var<'_>> = (0..3)
            .map(|i| tape.constant(randn(&[4, cfg.embed_dim], 20 + i).mul_scalar((i + 1) as f32)))
            .collect();
        let agg = cross_attention_aggregate(&binder, &cfg, &tokens);
        // Plain mean baseline through the same projections.
        let mut sum = tokens[0];
        for t in &tokens[1..] {
            sum = sum.add(*t);
        }
        let mean_v = sum
            .scale(1.0 / 3.0)
            .matmul(binder.param("xattn.wv").transpose2())
            .linear(binder.param("xattn.wo"), Some(binder.param("xattn.bo")));
        assert!(agg.value().max_abs_diff(&mean_v.value()) > 1e-4);
    }

    #[test]
    fn xattn_gradients_flow_to_all_projections() {
        let cfg = ModelConfig::tiny().with_channels(3, 3);
        let store = setup(&cfg);
        let tape = Tape::new();
        let binder = Binder::new(&tape, &store);
        let tokens: Vec<Var<'_>> = (0..3)
            .map(|i| tape.constant(randn(&[4, cfg.embed_dim], 30 + i)))
            .collect();
        let loss = cross_attention_aggregate(&binder, &cfg, &tokens).square().sum();
        let grads = tape.backward(loss);
        let gm = binder.grad_map(&grads);
        for name in ["xattn.wq", "xattn.wk", "xattn.wv", "xattn.wo"] {
            assert!(gm[name].data().iter().any(|&x| x != 0.0), "{name} got no gradient");
        }
    }
}
