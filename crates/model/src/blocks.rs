//! Transformer building blocks: multi-head self-attention, MLP, the
//! pre-norm block, and the cross-attention variable aggregation that
//! collapses the channel axis into a single token sequence (paper Fig. 2).

use crate::binder::Binder;
use crate::config::ModelConfig;
use orbit2_autograd::{ParamStore, Var};
use orbit2_tensor::random::xavier;
use orbit2_tensor::Tensor;

/// Register parameters for one transformer block under `prefix`.
pub fn init_block_params(store: &mut ParamStore, cfg: &ModelConfig, prefix: &str, seed: u64) {
    let d = cfg.embed_dim;
    let hidden = cfg.mlp_ratio * d;
    for (i, name) in ["wq", "wk", "wv", "wo"].iter().enumerate() {
        store.insert(format!("{prefix}.attn.{name}"), xavier(&[d, d], seed ^ (i as u64 + 1)));
    }
    store.insert(format!("{prefix}.attn.bo"), Tensor::zeros(vec![d]));
    store.insert(format!("{prefix}.ln1.g"), Tensor::ones(vec![d]));
    store.insert(format!("{prefix}.ln1.b"), Tensor::zeros(vec![d]));
    store.insert(format!("{prefix}.ln2.g"), Tensor::ones(vec![d]));
    store.insert(format!("{prefix}.ln2.b"), Tensor::zeros(vec![d]));
    store.insert(format!("{prefix}.mlp.w1"), xavier(&[hidden, d], seed ^ 0x10));
    store.insert(format!("{prefix}.mlp.b1"), Tensor::zeros(vec![hidden]));
    store.insert(format!("{prefix}.mlp.w2"), xavier(&[d, hidden], seed ^ 0x11));
    store.insert(format!("{prefix}.mlp.b2"), Tensor::zeros(vec![d]));
}

/// Multi-head self-attention over `[N, D]` tokens.
pub fn self_attention<'t>(
    binder: &Binder<'t, '_>,
    cfg: &ModelConfig,
    prefix: &str,
    x: Var<'t>,
) -> Var<'t> {
    let d = cfg.embed_dim;
    let dh = cfg.head_dim();
    // Q/K/V projections through the fused linear path (packed `x W^T`
    // kernel, no weight transpose materialized).
    let q = x.linear(binder.param(&format!("{prefix}.attn.wq")), None);
    let k = x.linear(binder.param(&format!("{prefix}.attn.wk")), None);
    let v = x.linear(binder.param(&format!("{prefix}.attn.wv")), None);
    let scale = 1.0 / (dh as f32).sqrt();
    let mut heads = Vec::with_capacity(cfg.heads);
    for h in 0..cfg.heads {
        let qh = q.slice_axis(1, h * dh, dh);
        let kh = k.slice_axis(1, h * dh, dh);
        let vh = v.slice_axis(1, h * dh, dh);
        // Q K^T straight from row-major storage via the nt kernel.
        let scores = qh.matmul_nt(kh).scale(scale);
        let probs = scores.softmax_last();
        heads.push(probs.matmul(vh));
    }
    let concat = Var::concat(&heads, 1);
    debug_assert_eq!(concat.shape()[1], d);
    concat.linear(
        binder.param(&format!("{prefix}.attn.wo")),
        Some(binder.param(&format!("{prefix}.attn.bo"))),
    )
}

/// Two-layer GELU MLP. The first layer runs GEMM + bias + GELU as one
/// fused kernel with the pre-activation stored for backward.
pub fn mlp<'t>(binder: &Binder<'t, '_>, prefix: &str, x: Var<'t>) -> Var<'t> {
    let h = x.linear_act(
        binder.param(&format!("{prefix}.mlp.w1")),
        Some(binder.param(&format!("{prefix}.mlp.b1"))),
        orbit2_tensor::fused::Activation::Gelu,
    );
    h.linear(
        binder.param(&format!("{prefix}.mlp.w2")),
        Some(binder.param(&format!("{prefix}.mlp.b2"))),
    )
}

/// Pre-norm transformer block: `x + Attn(LN(x))`, then `x + MLP(LN(x))`.
pub fn transformer_block<'t>(
    binder: &Binder<'t, '_>,
    cfg: &ModelConfig,
    prefix: &str,
    x: Var<'t>,
) -> Var<'t> {
    let n1 = x.layer_norm(
        binder.param(&format!("{prefix}.ln1.g")),
        binder.param(&format!("{prefix}.ln1.b")),
        1e-5,
    );
    let x = x.add(self_attention(binder, cfg, prefix, n1));
    let n2 = x.layer_norm(
        binder.param(&format!("{prefix}.ln2.g")),
        binder.param(&format!("{prefix}.ln2.b")),
        1e-5,
    );
    x.add(mlp(binder, prefix, n2))
}

/// Register parameters of the cross-attention variable aggregation.
pub fn init_xattn_params(store: &mut ParamStore, cfg: &ModelConfig, seed: u64) {
    let d = cfg.embed_dim;
    for (i, name) in ["wq", "wk", "wv", "wo"].iter().enumerate() {
        store.insert(format!("xattn.{name}"), xavier(&[d, d], seed ^ (0x20 + i as u64)));
    }
    store.insert("xattn.bo", Tensor::zeros(vec![d]));
}

/// Cross-attention aggregation: per spatial token, attend from the
/// variable-mean query over the `C` per-variable tokens and collapse them
/// into one (paper: "aggregate multi-variable embeddings into a unified
/// representation, effectively collapsing the variable dimension").
pub fn cross_attention_aggregate<'t>(
    binder: &Binder<'t, '_>,
    cfg: &ModelConfig,
    tokens: &[Var<'t>],
) -> Var<'t> {
    assert!(!tokens.is_empty());
    let d = cfg.embed_dim;
    let c = tokens.len();
    // Query: mean over variables, projected.
    let mut sum = tokens[0];
    for t in &tokens[1..] {
        sum = sum.add(*t);
    }
    let mean = sum.scale(1.0 / c as f32);
    let q = mean.linear(binder.param("xattn.wq"), None);
    let scale = 1.0 / (d as f32).sqrt();
    let ones = binder.constant(Tensor::ones(vec![d, 1]));
    let mut scores = Vec::with_capacity(c);
    let mut values = Vec::with_capacity(c);
    for t in tokens {
        let k = t.linear(binder.param("xattn.wk"), None);
        values.push(t.linear(binder.param("xattn.wv"), None));
        // Row-wise dot product q·k -> [N, 1].
        scores.push(q.mul(k).matmul(ones).scale(scale));
    }
    let probs = Var::concat(&scores, 1).softmax_last(); // [N, C]
    let mut out: Option<Var<'t>> = None;
    for (ci, v) in values.iter().enumerate() {
        let p = probs.slice_axis(1, ci, 1); // [N, 1] broadcasts over D
        let term = p.mul(*v);
        out = Some(match out {
            Some(acc) => acc.add(term),
            None => term,
        });
    }
    out.unwrap()
        .linear(binder.param("xattn.wo"), Some(binder.param("xattn.bo")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit2_autograd::Tape;
    use orbit2_tensor::random::randn;

    fn setup(cfg: &ModelConfig) -> ParamStore {
        let mut store = ParamStore::new();
        init_block_params(&mut store, cfg, "blk0", 7);
        init_xattn_params(&mut store, cfg, 7);
        store
    }

    #[test]
    fn block_preserves_shape_and_is_finite() {
        let cfg = ModelConfig::tiny();
        let store = setup(&cfg);
        let tape = Tape::new();
        let binder = Binder::new(&tape, &store);
        let x = tape.constant(randn(&[10, cfg.embed_dim], 1));
        let y = transformer_block(&binder, &cfg, "blk0", x);
        assert_eq!(y.shape(), vec![10, cfg.embed_dim]);
        assert!(y.value().all_finite());
    }

    #[test]
    fn block_is_trainable_end_to_end() {
        let cfg = ModelConfig::tiny();
        let store = setup(&cfg);
        let tape = Tape::new();
        let binder = Binder::new(&tape, &store);
        let x = tape.constant(randn(&[6, cfg.embed_dim], 2));
        let y = transformer_block(&binder, &cfg, "blk0", x);
        let loss = y.square().sum();
        let grads = tape.backward(loss);
        let gm = binder.grad_map(&grads);
        // Every block parameter receives a non-trivial gradient.
        for name in [
            "blk0.attn.wq",
            "blk0.attn.wo",
            "blk0.mlp.w1",
            "blk0.mlp.w2",
            "blk0.ln1.g",
        ] {
            let g = &gm[name];
            assert!(g.data().iter().any(|&x| x != 0.0), "{name} has zero gradient");
            assert!(g.all_finite(), "{name} has non-finite gradient");
        }
    }

    #[test]
    fn attention_head_slices_cover_dim() {
        // Heads x head_dim == embed_dim guaranteed by config; smoke-check
        // a 4-head tiny config through attention.
        let cfg = ModelConfig { heads: 4, embed_dim: 32, ..ModelConfig::tiny() };
        let mut store = ParamStore::new();
        init_block_params(&mut store, &cfg, "blk0", 3);
        let tape = Tape::new();
        let binder = Binder::new(&tape, &store);
        let x = tape.constant(randn(&[5, 32], 3));
        let y = self_attention(&binder, &cfg, "blk0", x);
        assert_eq!(y.shape(), vec![5, 32]);
    }

    #[test]
    fn xattn_collapses_variables() {
        let cfg = ModelConfig::tiny().with_channels(5, 3);
        let store = setup(&cfg);
        let tape = Tape::new();
        let binder = Binder::new(&tape, &store);
        let tokens: Vec<Var<'_>> = (0..5)
            .map(|i| tape.constant(randn(&[8, cfg.embed_dim], 10 + i)))
            .collect();
        let agg = cross_attention_aggregate(&binder, &cfg, &tokens);
        assert_eq!(agg.shape(), vec![8, cfg.embed_dim]);
        assert!(agg.value().all_finite());
    }

    #[test]
    fn xattn_attends_not_averages() {
        // The aggregation must differ from a plain mean of the value
        // projections (i.e. the softmax actually weights variables).
        let cfg = ModelConfig::tiny().with_channels(3, 3);
        let store = setup(&cfg);
        let tape = Tape::new();
        let binder = Binder::new(&tape, &store);
        let tokens: Vec<Var<'_>> = (0..3)
            .map(|i| tape.constant(randn(&[4, cfg.embed_dim], 20 + i).mul_scalar((i + 1) as f32)))
            .collect();
        let agg = cross_attention_aggregate(&binder, &cfg, &tokens);
        // Plain mean baseline through the same projections.
        let mut sum = tokens[0];
        for t in &tokens[1..] {
            sum = sum.add(*t);
        }
        let mean_v = sum
            .scale(1.0 / 3.0)
            .matmul(binder.param("xattn.wv").transpose2())
            .linear(binder.param("xattn.wo"), Some(binder.param("xattn.bo")));
        assert!(agg.value().max_abs_diff(&mean_v.value()) > 1e-4);
    }

    #[test]
    fn xattn_gradients_flow_to_all_projections() {
        let cfg = ModelConfig::tiny().with_channels(3, 3);
        let store = setup(&cfg);
        let tape = Tape::new();
        let binder = Binder::new(&tape, &store);
        let tokens: Vec<Var<'_>> = (0..3)
            .map(|i| tape.constant(randn(&[4, cfg.embed_dim], 30 + i)))
            .collect();
        let loss = cross_attention_aggregate(&binder, &cfg, &tokens).square().sum();
        let grads = tape.backward(loss);
        let gm = binder.grad_map(&grads);
        for name in ["xattn.wq", "xattn.wk", "xattn.wv", "xattn.wo"] {
            assert!(gm[name].data().iter().any(|&x| x != 0.0), "{name} got no gradient");
        }
    }
}
