//! Cross-request batched inference: one forward pass over a stack of
//! same-shaped tile inputs.
//!
//! The serving layer collects same-shaped tile jobs from different
//! in-flight requests and hands them here as one batch. Every *row-wise*
//! stage of the Reslim forward — the patch-embedding projection, the
//! cross-attention variable aggregation, Q/K/V/output projections, layer
//! norms, the MLP, and the decoder projection — runs as a single kernel
//! call over the row-stacked token matrices, so B tiles share one GEMM
//! against each weight instead of issuing B small ones. Stages whose math
//! couples rows within a sample (attention scores, token pool/unpool
//! bookkeeping, convolutions, bilinear resize) split the stack, run
//! per-sample exactly as [`crate::ReslimModel::forward`] would, and
//! re-stack.
//!
//! **Bit-identity contract**: for any batch, `forward_batch` produces the
//! same bytes as B separate `model.forward(session, ..)` calls. Row-wise
//! kernels compute each output row from its input row alone, so stacking
//! cannot change values — *provided the stacked call takes the same kernel
//! branch* as the per-sample calls. The one branch that depends on the row
//! count is the packed-GEMM eligibility threshold
//! ([`orbit2_tensor::matmul::packed_eligible`]); [`linear_stacked`] checks
//! it for every linear layer and falls back to per-sample dispatch on a
//! mismatch (only reachable for degenerately tiny shapes).
//! `tests/serve_batching.rs` property-tests the contract.
//!
//! The contract covers bf16-activation sessions too: every value-changing
//! op here goes through the session's [`Exec`] methods (wrapping stacked
//! tensors back into session values where needed), so the batched pass
//! narrows its intermediates at exactly the op boundaries the per-sample
//! pass does. Re-wrapping an op *output* via [`Exec::constant`] is lossless
//! — the data is already bf16-valued — while raw-tensor shortcuts around
//! a session op would skip a rounding step and break the contract.

use crate::compress::{token_saliency, CompressionPlan};
use crate::config::ModelConfig;
use crate::embed::{patchify_plane, resolution_row, sincos_positions, unpatchify_permutation};
use crate::exec::{Exec, RowGroups};
use crate::infer::{InferenceSession, SessionValue};
use crate::paths::path_hidden;
use crate::reslim::ReslimModel;
use orbit2_tensor::conv::ConvGeom;
use orbit2_tensor::fused::Activation;
use orbit2_tensor::matmul::packed_eligible;
use orbit2_tensor::Tensor;

/// A batch of per-sample token matrices stacked along the row axis.
///
/// `rows[i]` is the token count of sample `i` (samples may disagree after
/// adaptive compression chose different plans); the stacked tensor is
/// `[sum(rows), D]`.
#[derive(Clone, Debug)]
struct BatchStack {
    stacked: Tensor,
    rows: Vec<usize>,
}

impl BatchStack {
    fn from_parts(parts: &[Tensor]) -> Self {
        let rows = parts.iter().map(|p| p.shape()[0]).collect();
        let refs: Vec<&Tensor> = parts.iter().collect();
        BatchStack { stacked: Tensor::stack_rows(&refs), rows }
    }

    fn uniform(stacked: Tensor, rows: Vec<usize>) -> Self {
        debug_assert_eq!(rows.iter().sum::<usize>(), stacked.shape()[0]);
        BatchStack { stacked, rows }
    }

    fn parts(&self) -> Vec<Tensor> {
        self.stacked.split_rows(&self.rows)
    }

    fn total_rows(&self) -> usize {
        self.rows.iter().sum()
    }

    /// Row offset of sample `i` in the stacked matrix.
    fn offset(&self, i: usize) -> usize {
        self.rows[..i].iter().sum()
    }
}

/// Fused linear over a row stack, through the session's resident weight
/// pack. Issues ONE GEMM when every constituent sample would take the same
/// packed/scalar branch as the stack (the realistic case); otherwise runs
/// per-sample so the output stays bit-identical to unbatched execution.
fn linear_stacked(
    session: &InferenceSession,
    x: &BatchStack,
    w_name: &str,
    b_name: Option<&str>,
    act: Activation,
) -> BatchStack {
    let w = session.param(w_name);
    let wshape = w.tensor().shape().to_vec();
    let (n, k) = (wshape[0], wshape[1]);
    let bias = b_name.map(|b| session.param(b));
    let total = x.total_rows();
    let branch_stable = x
        .rows
        .iter()
        .all(|&r| packed_eligible(r, k, n) == packed_eligible(total, k, n));
    if branch_stable {
        let xv = session.constant(x.stacked.clone());
        let y = session.linear_act(&xv, &w, bias.as_ref(), act);
        BatchStack::uniform(y.into_tensor(), x.rows.clone())
    } else {
        let outs: Vec<Tensor> = x
            .parts()
            .into_iter()
            .map(|p| {
                let pv = session.constant(p);
                session.linear_act(&pv, &w, bias.as_ref(), act).into_tensor()
            })
            .collect();
        BatchStack::from_parts(&outs)
    }
}

/// Layer norm + affine over a row stack (row-wise; always batchable).
fn layer_norm_stacked(
    session: &InferenceSession,
    x: &BatchStack,
    g_name: &str,
    b_name: &str,
) -> BatchStack {
    let xv = session.constant(x.stacked.clone());
    let y = session.layer_norm(&xv, &session.param(g_name), &session.param(b_name), 1e-5);
    BatchStack::uniform(y.into_tensor(), x.rows.clone())
}

/// Batched mirror of [`crate::blocks::cross_attention_aggregate`]: every op
/// in the variable aggregation is row-wise (the "attention" is a per-token
/// softmax over the C variables), so the whole stage batches.
fn xattn_stacked(
    session: &InferenceSession,
    cfg: &ModelConfig,
    tokens: &[BatchStack],
) -> BatchStack {
    assert!(!tokens.is_empty());
    let d = cfg.embed_dim;
    let c = tokens.len();
    let rows = tokens[0].rows.clone();
    let mut sum = session.constant(tokens[0].stacked.clone());
    for t in &tokens[1..] {
        sum = session.add(&sum, &session.constant(t.stacked.clone()));
    }
    let mean =
        BatchStack::uniform(session.scale(&sum, 1.0 / c as f32).into_tensor(), rows.clone());
    let q = linear_stacked(session, &mean, "xattn.wq", None, Activation::Identity);
    let qv = session.constant(q.stacked);
    let scale = 1.0 / (d as f32).sqrt();
    let ones = session.constant(Tensor::ones(vec![d, 1]));
    let mut scores = Vec::with_capacity(c);
    let mut values = Vec::with_capacity(c);
    for t in tokens {
        let k = linear_stacked(session, t, "xattn.wk", None, Activation::Identity);
        values.push(linear_stacked(session, t, "xattn.wv", None, Activation::Identity));
        let kv = session.constant(k.stacked.clone());
        // Row-wise dot q·k via the ones matvec: n = 1 < LANES, so the GEMM
        // branch is row-count independent (never packed).
        scores.push(session.scale(&session.matmul(&session.mul(&qv, &kv), &ones), scale));
    }
    let probs = session.softmax_last(&session.concat(&scores, 1)); // [R, C]
    let mut out: Option<SessionValue> = None;
    for (ci, v) in values.iter().enumerate() {
        let p = session.slice_axis(&probs, 1, ci, 1); // [R, 1] broadcasts over D
        let term = session.mul(&p, &session.constant(v.stacked.clone()));
        out = Some(match out {
            Some(acc) => session.add(&acc, &term),
            None => term,
        });
    }
    linear_stacked(
        session,
        &BatchStack::uniform(out.unwrap().into_tensor(), rows),
        "xattn.wo",
        Some("xattn.bo"),
        Activation::Identity,
    )
}

/// Batched mirror of [`crate::blocks::self_attention`]: projections batch,
/// the score/softmax/value core runs per (head, sample) exactly as the
/// unbatched forward does.
fn self_attention_stacked(
    session: &InferenceSession,
    cfg: &ModelConfig,
    prefix: &str,
    x: &BatchStack,
) -> BatchStack {
    let dh = cfg.head_dim();
    let q = linear_stacked(session, x, &format!("{prefix}.attn.wq"), None, Activation::Identity);
    let k = linear_stacked(session, x, &format!("{prefix}.attn.wk"), None, Activation::Identity);
    let v = linear_stacked(session, x, &format!("{prefix}.attn.wv"), None, Activation::Identity);
    let scale = 1.0 / (dh as f32).sqrt();
    let b = x.rows.len();
    let mut heads = Vec::with_capacity(cfg.heads);
    for h in 0..cfg.heads {
        let qh = q.stacked.slice_axis(1, h * dh, dh);
        let kh = k.stacked.slice_axis(1, h * dh, dh);
        let vh = v.stacked.slice_axis(1, h * dh, dh);
        let mut per_sample = Vec::with_capacity(b);
        for i in 0..b {
            let (o, r) = (x.offset(i), x.rows[i]);
            let qi = session.constant(qh.slice_axis(0, o, r));
            let ki = session.constant(kh.slice_axis(0, o, r));
            let vi = session.constant(vh.slice_axis(0, o, r));
            let probs =
                session.softmax_last(&session.scale(&session.matmul_nt(&qi, &ki), scale));
            per_sample.push(session.matmul(&probs, &vi).into_tensor());
        }
        let refs: Vec<&Tensor> = per_sample.iter().collect();
        heads.push(Tensor::stack_rows(&refs));
    }
    let head_refs: Vec<&Tensor> = heads.iter().collect();
    let concat = BatchStack::uniform(Tensor::concat(&head_refs, 1), x.rows.clone());
    linear_stacked(
        session,
        &concat,
        &format!("{prefix}.attn.wo"),
        Some(&format!("{prefix}.attn.bo")),
        Activation::Identity,
    )
}

/// Batched pre-norm transformer block.
fn transformer_block_stacked(
    session: &InferenceSession,
    cfg: &ModelConfig,
    prefix: &str,
    x: &BatchStack,
) -> BatchStack {
    let n1 = layer_norm_stacked(session, x, &format!("{prefix}.ln1.g"), &format!("{prefix}.ln1.b"));
    let attn = self_attention_stacked(session, cfg, prefix, &n1);
    let res1 = session
        .add(&session.constant(x.stacked.clone()), &session.constant(attn.stacked))
        .into_tensor();
    let x = BatchStack::uniform(res1, x.rows.clone());
    let n2 = layer_norm_stacked(session, &x, &format!("{prefix}.ln2.g"), &format!("{prefix}.ln2.b"));
    let h = linear_stacked(
        session,
        &n2,
        &format!("{prefix}.mlp.w1"),
        Some(&format!("{prefix}.mlp.b1")),
        Activation::Gelu,
    );
    let m = linear_stacked(
        session,
        &h,
        &format!("{prefix}.mlp.w2"),
        Some(&format!("{prefix}.mlp.b2")),
        Activation::Identity,
    );
    let res2 = session
        .add(&session.constant(x.stacked.clone()), &session.constant(m.stacked))
        .into_tensor();
    BatchStack::uniform(res2, x.rows)
}

/// Decode one sample's full token grid to the high-resolution image
/// (per-sample mirror of [`crate::paths::decode`] minus the shared
/// projection, which the caller batches).
fn decode_tail(
    session: &InferenceSession,
    cfg: &ModelConfig,
    projected: &Tensor,
    hp: usize,
    wp: usize,
) -> SessionValue {
    let p = cfg.patch;
    let (h, w) = (hp * p, wp * p);
    let hidden = path_hidden(cfg);
    let n: usize = projected.len();
    let perm = unpatchify_permutation(hp, wp, p, hidden);
    let img = projected
        .reshape(vec![n, 1])
        .gather_rows(&perm)
        .reshape(vec![1, hidden, h, w]);
    let up = session.resize_bilinear(
        &session.gelu(&session.constant(img)),
        h * cfg.scale_factor,
        w * cfg.scale_factor,
    );
    let out = session.conv2d(
        &up,
        &session.param("dec.conv.w"),
        Some(&session.param("dec.conv.b")),
        ConvGeom::same(3),
    );
    let (oh, ow) = (h * cfg.scale_factor, w * cfg.scale_factor);
    session.reshape(&out, vec![cfg.out_channels, oh, ow])
}

/// Per-sample residual path (convolutional; mirror of
/// [`crate::paths::residual_path`]).
fn residual_sample(session: &InferenceSession, cfg: &ModelConfig, input: &Tensor) -> SessionValue {
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let x = session.constant(input.reshape(vec![1, c, h, w]));
    let hid = session.gelu(&session.conv2d(
        &x,
        &session.param("res.conv1.w"),
        Some(&session.param("res.conv1.b")),
        ConvGeom::same(3),
    ));
    let up = session.resize_bilinear(&hid, h * cfg.scale_factor, w * cfg.scale_factor);
    let out = session.conv2d(
        &up,
        &session.param("res.conv2.w"),
        Some(&session.param("res.conv2.b")),
        ConvGeom::same(3),
    );
    session.reshape(&out, vec![cfg.out_channels, h * cfg.scale_factor, w * cfg.scale_factor])
}

/// Run the Reslim forward over a batch of same-shaped `[C_in, h, w]`
/// inputs, sharing one GEMM per linear layer across the whole batch.
///
/// Returns per-sample `([C_out, H, W]` prediction, compression plan`)`
/// pairs, bit-identical to calling
/// [`ReslimModel::forward`]`(session, input, ..)` on each input alone.
pub fn forward_batch(
    model: &ReslimModel,
    session: &InferenceSession,
    inputs: &[&Tensor],
    compression_target: f32,
) -> Vec<(Tensor, CompressionPlan)> {
    assert!(!inputs.is_empty(), "forward_batch of nothing");
    let cfg = &model.cfg;
    let shape0 = inputs[0].shape().to_vec();
    for t in inputs {
        assert_eq!(t.ndim(), 3, "inputs must be [C, h, w]");
        assert_eq!(t.shape(), &shape0[..], "forward_batch requires same-shaped inputs");
    }
    let (c, h, w) = (shape0[0], shape0[1], shape0[2]);
    assert_eq!(c, cfg.in_channels);
    let (hp, wp) = (h / cfg.patch, w / cfg.patch);
    let n_tok = hp * wp;
    let b = inputs.len();

    // Step 1: tokenize each variable, one batched patch-embedding GEMM per
    // variable across all samples.
    let tokens: Vec<BatchStack> = (0..c)
        .map(|ci| {
            let patches: Vec<Tensor> = inputs
                .iter()
                .map(|input| {
                    let plane = input.slice_axis(0, ci, 1).into_reshape(vec![h, w]);
                    patchify_plane(&plane, cfg.patch)
                })
                .collect();
            let stack = BatchStack::from_parts(&patches);
            let tok = linear_stacked(session, &stack, "embed.w", Some("embed.b"), Activation::Identity);
            // [1, D] broadcasts over all rows.
            let ve = session.slice_axis(&session.param("embed.var"), 0, ci, 1);
            let tokv = session.constant(tok.stacked.clone());
            BatchStack::uniform(session.add(&tokv, &ve).into_tensor(), tok.rows)
        })
        .collect();

    // Step 2: collapse the variable axis (fully row-wise; fully batched).
    let mut agg = xattn_stacked(session, cfg, &tokens);

    // Structure decision per sample, on the content features.
    let plans: Vec<CompressionPlan> = if compression_target > 1.0 {
        (0..b)
            .map(|i| {
                let sal = token_saliency(&agg.stacked.slice_axis(0, agg.offset(i), n_tok), hp, wp);
                CompressionPlan::adaptive(&sal, compression_target)
            })
            .collect()
    } else {
        (0..b).map(|_| CompressionPlan::identity(hp, wp)).collect()
    };

    // Step 3: positional + resolution embeddings (tiled across the batch).
    let pos = sincos_positions(hp, wp, cfg.embed_dim);
    let pos_refs: Vec<&Tensor> = (0..b).map(|_| &pos).collect();
    let pos_stack = session.constant(Tensor::stack_rows(&pos_refs));
    let res_row =
        session.slice_axis(&session.param("embed.res"), 0, resolution_row(cfg.scale_factor), 1);
    let aggv = session.constant(agg.stacked.clone());
    agg = BatchStack::uniform(
        session.add(&session.add(&aggv, &pos_stack), &res_row).into_tensor(),
        agg.rows,
    );

    // Step 4: compress — merge the per-sample group lists into one pooled
    // call by offsetting token indices into the stack.
    let mut merged_groups: Vec<Vec<usize>> = Vec::new();
    let mut z_rows = Vec::with_capacity(b);
    for (i, plan) in plans.iter().enumerate() {
        let base = i * n_tok;
        for g in plan.groups.iter() {
            merged_groups.push(g.iter().map(|&t| t + base).collect());
        }
        z_rows.push(plan.compressed_len());
    }
    let merged: RowGroups = merged_groups.into();
    let aggv = session.constant(agg.stacked);
    let mut z = BatchStack::uniform(session.pool_rows(&aggv, &merged).into_tensor(), z_rows);

    // Step 5: ViT blocks on the (compressed, ragged) stack.
    for l in 0..cfg.layers {
        z = transformer_block_stacked(session, cfg, &format!("blk{l}"), &z);
    }

    // Step 6: decompress back to the full grids and decode. The decoder
    // projection is shared (batched); the image-space tail is per sample.
    let zv = session.constant(z.stacked);
    let full = BatchStack::uniform(
        session.unpool_rows(&zv, &merged, b * n_tok).into_tensor(),
        vec![n_tok; b],
    );
    let projected = linear_stacked(
        session,
        &full,
        "dec.proj.w",
        Some("dec.proj.b"),
        Activation::Identity,
    );
    projected
        .parts()
        .into_iter()
        .zip(inputs)
        .zip(plans)
        .map(|((proj, input), plan)| {
            let main = decode_tail(session, cfg, &proj, hp, wp);
            let residual = residual_sample(session, cfg, input);
            (session.add(&main, &residual).into_tensor(), plan)
        })
        .collect()
}

impl ReslimModel {
    /// Batched forward over same-shaped inputs: one GEMM per linear layer
    /// for the whole batch, bit-identical to per-input [`Self::forward`]
    /// calls on the same session. See [`forward_batch`].
    pub fn forward_batch(
        &self,
        session: &InferenceSession,
        inputs: &[&Tensor],
        compression_target: f32,
    ) -> Vec<(Tensor, CompressionPlan)> {
        forward_batch(self, session, inputs, compression_target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit2_tensor::random::randn;

    fn model() -> ReslimModel {
        ReslimModel::new(ModelConfig::tiny().with_channels(4, 3), 17)
    }

    #[test]
    fn batch_of_one_matches_forward() {
        let m = model();
        let session = m.session();
        let input = randn(&[4, 8, 16], 1);
        let (solo, _) = m.forward(&session, &input, 1.0);
        let batch = forward_batch(&m, &session, &[&input], 1.0);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].0.data(), solo.into_tensor().data());
    }

    #[test]
    fn batch_matches_per_sample_bitwise() {
        let m = model();
        let session = m.session();
        let inputs: Vec<Tensor> = (0..3).map(|i| randn(&[4, 8, 16], 100 + i)).collect();
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let batch = forward_batch(&m, &session, &refs, 1.0);
        for (input, (pred, _)) in inputs.iter().zip(&batch) {
            let (solo, _) = m.forward(&session, input, 1.0);
            assert_eq!(pred.data(), solo.into_tensor().data());
        }
    }

    #[test]
    fn batch_matches_under_adaptive_compression() {
        // Different samples pick different plans (ragged compressed
        // lengths) and the stack must still match per-sample execution.
        let m = model();
        let session = m.session();
        let smooth = Tensor::full(vec![4, 16, 16], 0.25);
        let noisy = randn(&[4, 16, 16], 9);
        let batch = forward_batch(&m, &session, &[&smooth, &noisy], 2.0);
        for (input, (pred, plan)) in [&smooth, &noisy].iter().zip(&batch) {
            let (solo, solo_plan) = m.forward(&session, input, 2.0);
            assert_eq!(pred.data(), solo.into_tensor().data());
            assert_eq!(plan.compressed_len(), solo_plan.compressed_len());
        }
    }

    #[test]
    fn bf16_activation_batch_matches_per_sample_bitwise() {
        use crate::infer::{SessionActivation, SessionPrecision};
        // The bit-identity contract must hold when the session streams bf16
        // activations: every stacked op narrows exactly where the
        // per-sample ops do. Cover both an f32 and a bf16 weight set.
        let m = model();
        for wp in [SessionPrecision::F32, SessionPrecision::Bf16] {
            let session = m.session_with(wp, SessionActivation::Bf16);
            let inputs: Vec<Tensor> = (0..3).map(|i| randn(&[4, 8, 16], 200 + i)).collect();
            let refs: Vec<&Tensor> = inputs.iter().collect();
            let batch = forward_batch(&m, &session, &refs, 1.0);
            for (input, (pred, _)) in inputs.iter().zip(&batch) {
                let (solo, _) = m.forward(&session, input, 1.0);
                assert_eq!(pred.data(), solo.into_tensor().data(), "weights {wp:?}");
            }
        }
    }

    #[test]
    fn bf16_activation_batch_matches_under_adaptive_compression() {
        use crate::infer::{SessionActivation, SessionPrecision};
        let m = model();
        let session = m.session_with(SessionPrecision::Bf16, SessionActivation::Bf16);
        let smooth = Tensor::full(vec![4, 16, 16], 0.25);
        let noisy = randn(&[4, 16, 16], 31);
        let batch = forward_batch(&m, &session, &[&smooth, &noisy], 2.0);
        for (input, (pred, plan)) in [&smooth, &noisy].iter().zip(&batch) {
            let (solo, solo_plan) = m.forward(&session, input, 2.0);
            assert_eq!(pred.data(), solo.into_tensor().data());
            assert_eq!(plan.compressed_len(), solo_plan.compressed_len());
        }
    }

    #[test]
    #[should_panic(expected = "same-shaped")]
    fn mixed_shapes_rejected() {
        let m = model();
        let session = m.session();
        let a = randn(&[4, 8, 16], 1);
        let b = randn(&[4, 8, 8], 2);
        forward_batch(&m, &session, &[&a, &b], 1.0);
    }
}
