//! Analytic parameter/FLOP accounting — the stand-in for the paper's
//! DeepSpeed profiler (Sec. IV "Performance Metrics").
//!
//! FLOP formulas are the standard transformer estimates: per layer,
//! `8 s D²` for the QKVO projections, `4 s² D` for the attention matmuls,
//! and `4 · mlp_ratio · s D²` for the MLP; training costs ≈ 3x the forward
//! pass (backward ≈ 2x). Reslim runs these at the *effective* (aggregated,
//! low-resolution, compressed) sequence; the baseline pays the full
//! upsampled sequence.

use crate::config::ModelConfig;
use serde::{Deserialize, Serialize};

/// Analytic profile of one model configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Parameter count.
    pub params: u64,
    /// Transformer depth.
    pub layers: usize,
    /// Embedding dimension.
    pub embed_dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// MLP expansion ratio.
    pub mlp_ratio: usize,
}

impl ModelProfile {
    /// Profile a configuration.
    pub fn of(cfg: &ModelConfig) -> Self {
        Self {
            params: cfg.param_count(),
            layers: cfg.layers,
            embed_dim: cfg.embed_dim,
            heads: cfg.heads,
            mlp_ratio: cfg.mlp_ratio,
        }
    }

    /// Forward FLOPs of the transformer stack at sequence length `s`.
    pub fn forward_flops(&self, s: u64) -> f64 {
        let d = self.embed_dim as f64;
        let sf = s as f64;
        let per_layer = 8.0 * sf * d * d + 4.0 * sf * sf * d + 4.0 * self.mlp_ratio as f64 * sf * d * d;
        per_layer * self.layers as f64
    }

    /// Forward+backward (training) FLOPs at sequence length `s`.
    pub fn train_flops(&self, s: u64) -> f64 {
        3.0 * self.forward_flops(s)
    }

    /// Fraction of forward FLOPs in the quadratic attention term at `s` —
    /// drives where tiling pays off.
    pub fn attention_fraction(&self, s: u64) -> f64 {
        let d = self.embed_dim as f64;
        let sf = s as f64;
        let quad = 4.0 * sf * sf * d;
        let lin = (8.0 + 4.0 * self.mlp_ratio as f64) * sf * d * d;
        quad / (quad + lin) * self.layers as f64 / self.layers as f64
    }

    /// Sequence length at which attention reaches half the FLOPs:
    /// `s* = (2 + mlp_ratio) · D`.
    pub fn attention_crossover_seq(&self) -> u64 {
        ((2 + self.mlp_ratio) * self.embed_dim) as u64
    }
}

/// Sequence-length accounting for the downscaling task, following the
/// paper's conventions (Table II: "outputs of shape [H, W, C] and 2x2 patch
/// size yield sequence length H·W·C/4").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SequenceAccounting {
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
    /// Output channels.
    pub out_c: usize,
    /// Patch edge.
    pub patch: usize,
    /// Spatial refinement factor.
    pub factor: usize,
}

impl SequenceAccounting {
    /// The paper's headline "sequence length": output tokens across all
    /// channels.
    pub fn nominal_seq_len(&self) -> u64 {
        (self.out_h as u64 * self.out_w as u64 * self.out_c as u64) / (self.patch * self.patch) as u64
    }

    /// The sequence the baseline upsample-first ViT actually runs:
    /// channel-aggregated but at full output resolution.
    pub fn baseline_vit_seq(&self) -> u64 {
        (self.out_h as u64 * self.out_w as u64) / (self.patch * self.patch) as u64
    }

    /// The effective sequence Reslim's ViT runs: channel aggregation
    /// (x `out_c`), low-resolution operation (x `factor^2`) and adaptive
    /// compression (x `compression`).
    pub fn reslim_effective_seq(&self, compression: f64) -> u64 {
        let reduction = self.out_c as f64 * (self.factor * self.factor) as f64 * compression.max(1.0);
        (self.nominal_seq_len() as f64 / reduction).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2a_sequence_lengths() {
        // 622 -> 156 km: [128, 256, 3] with 2x2 patches -> 24,576 tokens.
        let acc = SequenceAccounting { out_h: 128, out_w: 256, out_c: 3, patch: 2, factor: 4 };
        assert_eq!(acc.nominal_seq_len(), 24_576);
        // 112 -> 28 km: [720, 1440, 3] -> 777,600 tokens ("777,660" in the
        // paper's table, which rounds).
        let acc2 = SequenceAccounting { out_h: 720, out_w: 1440, out_c: 3, patch: 2, factor: 4 };
        assert_eq!(acc2.nominal_seq_len(), 777_600);
    }

    #[test]
    fn table3_sequence_lengths() {
        // [5760, 11520, 18] -> 298.6M; [21600, 43200, 18] -> 4.2B.
        let a = SequenceAccounting { out_h: 5760, out_w: 11520, out_c: 18, patch: 2, factor: 4 };
        assert!((a.nominal_seq_len() as f64 / 298.6e6 - 1.0).abs() < 0.01);
        let b = SequenceAccounting { out_h: 21_600, out_w: 43_200, out_c: 18, patch: 2, factor: 4 };
        assert!((b.nominal_seq_len() as f64 / 4.199e9 - 1.0).abs() < 0.01);
    }

    #[test]
    fn reslim_reduction_factors() {
        // Paper Sec. V-B: channel aggregation 18x, low-res 16x (4x per
        // axis), compression 4x -> 1.1B tokens become ~17k per tile after
        // also dividing by 16 tiles.
        let acc = SequenceAccounting { out_h: 11_520, out_w: 23_040, out_c: 18, patch: 2, factor: 4 };
        let eff = acc.reslim_effective_seq(4.0);
        let per_tile = eff / 16;
        assert!(per_tile > 10_000 && per_tile < 80_000, "per-tile seq {per_tile}");
    }

    #[test]
    fn flops_scale_quadratically_in_seq_eventually() {
        let p = ModelProfile::of(&ModelConfig::paper_9_5m());
        let s0 = p.attention_crossover_seq();
        // Past the crossover, doubling s costs > 3x.
        let f1 = p.forward_flops(4 * s0);
        let f2 = p.forward_flops(8 * s0);
        assert!(f2 / f1 > 3.0);
        // Far below it, roughly linear.
        let g1 = p.forward_flops(s0 / 64);
        let g2 = p.forward_flops(s0 / 32);
        assert!(g2 / g1 < 2.2);
    }

    #[test]
    fn train_flops_are_3x_forward() {
        let p = ModelProfile::of(&ModelConfig::paper_126m());
        assert!((p.train_flops(1000) / p.forward_flops(1000) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn bigger_models_cost_more() {
        let s = 16_384u64;
        let f95 = ModelProfile::of(&ModelConfig::paper_9_5m()).forward_flops(s);
        let f126 = ModelProfile::of(&ModelConfig::paper_126m()).forward_flops(s);
        let f10b = ModelProfile::of(&ModelConfig::paper_10b()).forward_flops(s);
        assert!(f95 < f126 && f126 < f10b);
    }

    #[test]
    fn crossover_matches_formula() {
        let p = ModelProfile::of(&ModelConfig::paper_9_5m());
        assert_eq!(p.attention_crossover_seq(), 6 * 256);
    }
}
