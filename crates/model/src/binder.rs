//! Binding a parameter store onto a gradient tape.
//!
//! Each training step builds a fresh tape; the binder memoizes one leaf
//! [`Var`] per parameter name so that however many times a forward pass
//! reuses a weight, gradients accumulate in a single slot, and the step's
//! gradient map can be extracted by name afterwards.

use orbit2_autograd::params::GradMap;
use orbit2_autograd::{Gradients, ParamStore, Tape, Var};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// A per-step view of the parameters as tape leaves.
pub struct Binder<'t, 's> {
    tape: &'t Tape,
    store: &'s ParamStore,
    bound: RefCell<BTreeMap<String, Var<'t>>>,
}

impl<'t, 's> Binder<'t, 's> {
    /// Create a binder for one forward/backward pass.
    pub fn new(tape: &'t Tape, store: &'s ParamStore) -> Self {
        Self { tape, store, bound: RefCell::new(BTreeMap::new()) }
    }

    /// The tape being recorded on.
    pub fn tape(&self) -> &'t Tape {
        self.tape
    }

    /// Leaf var for a parameter (memoized per name).
    pub fn param(&self, name: &str) -> Var<'t> {
        if let Some(v) = self.bound.borrow().get(name) {
            return *v;
        }
        let v = self.tape.leaf(self.store.get(name).clone());
        self.bound.borrow_mut().insert(name.to_string(), v);
        v
    }

    /// Constant (non-trainable) tensor on the tape.
    pub fn constant(&self, t: orbit2_tensor::Tensor) -> Var<'t> {
        self.tape.constant(t)
    }

    /// Extract the gradient map for every bound parameter after backward.
    pub fn grad_map(&self, grads: &Gradients) -> GradMap {
        self.bound
            .borrow()
            .iter()
            .map(|(name, &var)| (name.clone(), grads.get_or_zero(var)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit2_tensor::Tensor;

    #[test]
    fn param_is_memoized() {
        let mut store = ParamStore::new();
        store.insert("w", Tensor::from_vec(vec![2], vec![1.0, 2.0]));
        let tape = Tape::new();
        let binder = Binder::new(&tape, &store);
        let _a = binder.param("w");
        let n_after_first = tape.len();
        let _b = binder.param("w");
        assert_eq!(tape.len(), n_after_first, "second bind must not add a node");
    }

    #[test]
    fn reused_param_accumulates_gradient() {
        let mut store = ParamStore::new();
        store.insert("w", Tensor::from_vec(vec![2], vec![1.0, 3.0]));
        let tape = Tape::new();
        let binder = Binder::new(&tape, &store);
        let w1 = binder.param("w");
        let w2 = binder.param("w");
        // loss = sum(w * w) using two bindings of the same leaf.
        let loss = w1.mul(w2).sum();
        let grads = tape.backward(loss);
        let gm = binder.grad_map(&grads);
        assert_eq!(gm["w"].data(), &[2.0, 6.0]);
    }

    #[test]
    fn grad_map_contains_only_bound_params() {
        let mut store = ParamStore::new();
        store.insert("used", Tensor::ones(vec![1]));
        store.insert("unused", Tensor::ones(vec![1]));
        let tape = Tape::new();
        let binder = Binder::new(&tape, &store);
        let loss = binder.param("used").sum();
        let grads = tape.backward(loss);
        let gm = binder.grad_map(&grads);
        assert!(gm.contains_key("used"));
        assert!(!gm.contains_key("unused"));
    }
}
