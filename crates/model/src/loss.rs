//! The Bayesian training objective (paper Sec. III-A):
//!
//! ```text
//! argmin  ||y - x̂||²_D  +  Σ_k Σ_i Σ_{j ∈ C(i)} b_ij |x_ki - x_kj|
//! ```
//!
//! The first term is the data likelihood — a latitude-weighted MSE (`D` is
//! the diagonal cos-latitude weighting). The second is a generalized Markov
//! Random Field total-variation prior over each pixel's neighbourhood with
//! weights `b_ij` inversely proportional to pixel distance: it promotes
//! local smoothness while preserving edges. The L1 norm is smoothed with a
//! Charbonnier `sqrt(x² + ε²)` so the objective stays differentiable.

use orbit2_autograd::Var;
use orbit2_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Configuration of the Bayesian loss.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BayesianLossCfg {
    /// Weight of the total-variation prior relative to the likelihood.
    pub tv_weight: f32,
    /// Charbonnier smoothing epsilon for |·|.
    pub tv_eps: f32,
    /// Include diagonal neighbours (weight 1/√2) in the MRF neighbourhood.
    pub diagonal_neighbors: bool,
}

impl Default for BayesianLossCfg {
    fn default() -> Self {
        Self { tv_weight: 0.05, tv_eps: 1e-3, diagonal_neighbors: true }
    }
}

/// Evaluate the Bayesian loss of a prediction `[C, H, W]` against a target,
/// with `lat_weights` an `[H, W]` (or broadcastable) weight field normalized
/// to mean 1.
pub fn bayesian_loss<'t>(
    pred: Var<'t>,
    target: &Tensor,
    lat_weights: &Tensor,
    cfg: BayesianLossCfg,
) -> Var<'t> {
    let shape = pred.shape();
    assert_eq!(shape.len(), 3, "prediction must be [C, H, W]");
    assert_eq!(&shape[..], target.shape(), "pred/target shape mismatch");
    let likelihood = pred.weighted_mse(target, Some(lat_weights));
    if cfg.tv_weight == 0.0 {
        return likelihood;
    }
    let tv = total_variation(pred, cfg);
    likelihood.add(tv.scale(cfg.tv_weight))
}

/// The MRF total-variation prior alone (mean over all neighbour pairs).
pub fn total_variation<'t>(pred: Var<'t>, cfg: BayesianLossCfg) -> Var<'t> {
    let shape = pred.shape();
    let (h, w) = (shape[1], shape[2]);
    assert!(h >= 2 && w >= 2, "TV needs at least a 2x2 field");
    // Horizontal neighbour differences: x[:, :, 1:] - x[:, :, :-1].
    let dx = pred
        .slice_axis(2, 1, w - 1)
        .sub(pred.slice_axis(2, 0, w - 1))
        .smooth_abs(cfg.tv_eps);
    // Vertical: x[:, 1:, :] - x[:, :-1, :].
    let dy = pred
        .slice_axis(1, 1, h - 1)
        .sub(pred.slice_axis(1, 0, h - 1))
        .smooth_abs(cfg.tv_eps);
    let mut total = dx.mean().add(dy.mean());
    if cfg.diagonal_neighbors {
        // b_ij = 1/distance = 1/sqrt(2) for diagonal pairs.
        let inv_sqrt2 = std::f32::consts::FRAC_1_SQRT_2;
        let dd = pred
            .slice_axis(1, 1, h - 1)
            .slice_axis(2, 1, w - 1)
            .sub(pred.slice_axis(1, 0, h - 1).slice_axis(2, 0, w - 1))
            .smooth_abs(cfg.tv_eps);
        let da = pred
            .slice_axis(1, 1, h - 1)
            .slice_axis(2, 0, w - 1)
            .sub(pred.slice_axis(1, 0, h - 1).slice_axis(2, 1, w - 1))
            .smooth_abs(cfg.tv_eps);
        total = total.add(dd.mean().scale(inv_sqrt2)).add(da.mean().scale(inv_sqrt2));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use orbit2_autograd::Tape;
    use orbit2_tensor::random::randn;

    fn weights(h: usize, w: usize) -> Tensor {
        Tensor::ones(vec![h, w])
    }

    #[test]
    fn perfect_smooth_prediction_has_near_zero_loss() {
        let tape = Tape::new();
        let target = Tensor::full(vec![2, 4, 4], 1.5);
        let pred = tape.leaf(target.clone());
        let loss = bayesian_loss(pred, &target, &weights(4, 4), BayesianLossCfg::default());
        // Likelihood 0; TV of constant field ~ eps.
        assert!(loss.value().item() < 1e-3);
    }

    #[test]
    fn likelihood_term_matches_weighted_mse() {
        let tape = Tape::new();
        let target = Tensor::zeros(vec![1, 2, 2]);
        let pred = tape.leaf(Tensor::from_vec(vec![1, 2, 2], vec![1.0, 1.0, 1.0, 1.0]));
        let cfg = BayesianLossCfg { tv_weight: 0.0, ..Default::default() };
        let loss = bayesian_loss(pred, &target, &weights(2, 2), cfg);
        assert!((loss.value().item() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn latitude_weighting_discounts_rows() {
        let tape = Tape::new();
        let target = Tensor::zeros(vec![1, 2, 2]);
        // Error only in row 0; weights kill row 0.
        let pred = tape.leaf(Tensor::from_vec(vec![1, 2, 2], vec![5.0, 5.0, 0.0, 0.0]));
        let w = Tensor::from_vec(vec![2, 2], vec![0.0, 0.0, 2.0, 2.0]);
        let cfg = BayesianLossCfg { tv_weight: 0.0, ..Default::default() };
        let loss = bayesian_loss(pred, &target, &w, cfg);
        assert!(loss.value().item() < 1e-6);
    }

    #[test]
    fn tv_prior_penalizes_noise_more_than_smooth() {
        let tape = Tape::new();
        let smooth = tape.leaf(Tensor::from_vec(
            vec![1, 4, 4],
            (0..16).map(|i| i as f32 * 0.1).collect(),
        ));
        let noisy = tape.leaf(randn(&[1, 4, 4], 1));
        let cfg = BayesianLossCfg::default();
        let tv_smooth = total_variation(smooth, cfg).value().item();
        let tv_noisy = total_variation(noisy, cfg).value().item();
        assert!(tv_noisy > tv_smooth * 2.0, "noisy {tv_noisy} vs smooth {tv_smooth}");
    }

    #[test]
    fn tv_preserves_edges_vs_l2() {
        // A step edge and a noisy field with the same L2 gradient energy:
        // the L1-style TV penalizes the step *less* than L2 would, which is
        // the edge-preserving property.
        let tape = Tape::new();
        // Step: one big jump of 4 across a single pair per row (two
        // identical rows so vertical differences vanish).
        let step = tape.leaf(Tensor::from_vec(
            vec![1, 2, 4],
            vec![0.0, 0.0, 4.0, 4.0, 0.0, 0.0, 4.0, 4.0],
        ));
        // Ramp: many small jumps summing to the same total variation.
        let ramp_row = [0.0, 4.0 / 3.0, 8.0 / 3.0, 4.0];
        let ramp = tape.leaf(Tensor::from_vec(
            vec![1, 2, 4],
            ramp_row.iter().chain(ramp_row.iter()).copied().collect(),
        ));
        let cfg = BayesianLossCfg { diagonal_neighbors: false, ..Default::default() };
        let tv_step = total_variation(step, cfg).value().item();
        let tv_ramp = total_variation(ramp, cfg).value().item();
        // L1 TV treats them (nearly) equally -> no edge penalty.
        assert!((tv_step - tv_ramp).abs() / tv_ramp < 0.01, "step {tv_step} vs ramp {tv_ramp}");
    }

    #[test]
    fn diagonal_neighbors_add_weighted_terms() {
        let tape = Tape::new();
        let x = tape.leaf(randn(&[1, 4, 4], 2));
        let with = total_variation(x, BayesianLossCfg { diagonal_neighbors: true, ..Default::default() })
            .value()
            .item();
        let without = total_variation(
            x,
            BayesianLossCfg { diagonal_neighbors: false, ..Default::default() },
        )
        .value()
        .item();
        assert!(with > without);
    }

    #[test]
    fn loss_is_differentiable_everywhere() {
        // Including at zero differences (Charbonnier smoothing).
        let tape = Tape::new();
        let target = Tensor::zeros(vec![1, 3, 3]);
        let pred = tape.leaf(Tensor::zeros(vec![1, 3, 3]));
        let loss = bayesian_loss(pred, &target, &weights(3, 3), BayesianLossCfg::default());
        let grads = tape.backward(loss);
        let g = grads.get(pred).unwrap();
        assert!(g.all_finite());
    }
}
