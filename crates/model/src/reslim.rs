//! The assembled Reslim model (paper Fig. 2).
//!
//! Main path: per-variable tokenization → cross-attention aggregation →
//! (+ positional and resolution embeddings) → optional adaptive spatial
//! compression → ViT blocks → decompression → convolutional decoder.
//! Residual path: lightweight convolutional upsampling of the raw input.
//! The prediction is the sum of both paths; no input upsampling ever enters
//! the ViT, which is the whole efficiency argument of the architecture.

use crate::blocks::{cross_attention_aggregate, init_block_params, init_xattn_params, transformer_block};
use crate::compress::{token_saliency, CompressionPlan};
use crate::config::ModelConfig;
use crate::embed::{init_embed_params, resolution_row, sincos_positions, tokenize};
use crate::exec::Exec;
use crate::infer::InferenceSession;
use crate::paths::{decode, init_decoder_params, init_residual_params, residual_path};
use orbit2_autograd::ParamStore;
use orbit2_tensor::Tensor;

/// A Reslim model: configuration plus named parameters.
pub struct ReslimModel {
    /// Architecture hyper-parameters.
    pub cfg: ModelConfig,
    /// Trainable parameters.
    pub params: ParamStore,
}

impl ReslimModel {
    /// Initialize a model with deterministic weights.
    pub fn new(cfg: ModelConfig, seed: u64) -> Self {
        let mut params = ParamStore::new();
        init_embed_params(&mut params, &cfg, seed);
        init_xattn_params(&mut params, &cfg, seed);
        for l in 0..cfg.layers {
            init_block_params(&mut params, &cfg, &format!("blk{l}"), seed.wrapping_add(l as u64 + 1));
        }
        init_decoder_params(&mut params, &cfg, seed);
        init_residual_params(&mut params, &cfg, seed);
        Self { cfg, params }
    }

    /// Actual trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.params.num_elements()
    }

    /// Prepare a tape-free inference context over this model's weights:
    /// weights snapshotted and linear packs built once, reusable across
    /// samples and shareable across tile-worker threads.
    pub fn session(&self) -> InferenceSession {
        InferenceSession::prepare(&self.params)
    }

    /// Like [`session`](Self::session), but with the weight set held at a
    /// reduced storage precision (see [`InferenceSession::prepare_at`]).
    pub fn session_at(&self, precision: crate::infer::SessionPrecision) -> InferenceSession {
        InferenceSession::prepare_at(&self.params, precision)
    }

    /// Like [`session_at`](Self::session_at), additionally choosing the
    /// activation precision the session streams at (see
    /// [`InferenceSession::prepare_with`]).
    pub fn session_with(
        &self,
        precision: crate::infer::SessionPrecision,
        activation: crate::infer::SessionActivation,
    ) -> InferenceSession {
        InferenceSession::prepare_with(&self.params, precision, activation)
    }

    /// Forward pass on one `[C_in, h, w]` sample.
    ///
    /// Generic over the execution context: a [`crate::Binder`] records the
    /// pass on its tape for training; an [`InferenceSession`] runs the
    /// identical kernels tape-free. `compression_target` of 1.0 disables
    /// adaptive compression (the module acts as identity). Returns the
    /// `[C_out, H, W]` prediction and the compression plan actually used
    /// (for sequence-length accounting).
    pub fn forward<E: Exec>(
        &self,
        ex: &E,
        input: &Tensor,
        compression_target: f32,
    ) -> (E::Value, CompressionPlan) {
        let cfg = &self.cfg;
        assert_eq!(input.ndim(), 3);
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let (hp, wp) = (h / cfg.patch, w / cfg.patch);

        // Main path, step 1: tokenize each variable.
        let tokens = tokenize(ex, cfg, input);
        // Step 2: collapse the variable axis via cross attention.
        let mut agg = cross_attention_aggregate(ex, cfg, &tokens);
        // Step 4 structure decision happens on the *content* features
        // (before positional offsets, which would register as fake edges).
        let plan = if compression_target > 1.0 {
            let saliency = token_saliency(&ex.tensor(&agg), hp, wp);
            CompressionPlan::adaptive(&saliency, compression_target)
        } else {
            CompressionPlan::identity(hp, wp)
        };
        // Step 3: positional + resolution embeddings.
        let pos = ex.constant(sincos_positions(hp, wp, cfg.embed_dim));
        let res_row = ex.slice_axis(
            &ex.param("embed.res"),
            0,
            resolution_row(cfg.scale_factor),
            1,
        ); // [1, D] broadcast
        agg = ex.add(&ex.add(&agg, &pos), &res_row);
        let mut z = plan.compress(ex, &agg);

        // Step 5: ViT blocks on the (compressed) sequence.
        for l in 0..cfg.layers {
            z = transformer_block(ex, cfg, &format!("blk{l}"), &z);
        }

        // Step 6: decompress and decode to the high-resolution image.
        let full = plan.decompress(ex, &z);
        let main = decode(ex, cfg, &full, hp, wp);

        // Residual path on the raw input; prediction is the sum.
        let residual = residual_path(ex, cfg, input);
        (ex.add(&main, &residual), plan)
    }

    /// Effective ViT sequence length for an input of `h x w` pixels at the
    /// given compression ratio (the quantity Tables II/III track).
    pub fn effective_seq_len(&self, h: usize, w: usize, compression: f32) -> usize {
        let n = (h / self.cfg.patch) * (w / self.cfg.patch);
        (n as f32 / compression.max(1.0)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::Binder;
    use orbit2_autograd::Tape;
    use orbit2_tensor::random::randn;

    fn model() -> ReslimModel {
        ReslimModel::new(ModelConfig::tiny().with_channels(4, 3), 11)
    }

    #[test]
    fn forward_shape() {
        let m = model();
        let tape = Tape::new();
        let binder = Binder::new(&tape, &m.params);
        let input = randn(&[4, 8, 16], 1);
        let (pred, plan) = m.forward(&binder, &input, 1.0);
        assert_eq!(pred.shape(), vec![3, 32, 64]);
        assert_eq!(plan.compressed_len(), (8 / 2) * (16 / 2));
        assert!(pred.value().all_finite());
    }

    #[test]
    fn forward_deterministic() {
        let m = model();
        let input = randn(&[4, 8, 16], 2);
        let run = || {
            let tape = Tape::new();
            let binder = Binder::new(&tape, &m.params);
            m.forward(&binder, &input, 1.0).0.value()
        };
        assert_eq!(run().data(), run().data());
    }

    #[test]
    fn compression_shortens_sequence_but_keeps_output_shape() {
        let m = model();
        let tape = Tape::new();
        let binder = Binder::new(&tape, &m.params);
        // Smooth input -> high compressibility.
        let input = Tensor::full(vec![4, 16, 16], 0.3);
        let (pred, plan) = m.forward(&binder, &input, 4.0);
        assert_eq!(pred.shape(), vec![3, 64, 64]);
        assert!(plan.ratio() > 1.5, "smooth input should compress, got {}", plan.ratio());
    }

    #[test]
    fn all_parameters_receive_gradients() {
        let m = model();
        let tape = Tape::new();
        let binder = Binder::new(&tape, &m.params);
        let input = randn(&[4, 8, 8], 3);
        let (pred, _) = m.forward(&binder, &input, 1.0);
        let loss = pred.square().sum();
        let grads = tape.backward(loss);
        let gm = binder.grad_map(&grads);
        assert_eq!(gm.len(), m.params.len(), "every parameter must be bound in forward");
        let dead: Vec<&String> = gm
            .iter()
            .filter(|(_, g)| g.data().iter().all(|&x| x == 0.0))
            .map(|(n, _)| n)
            .collect();
        assert!(dead.is_empty(), "parameters with zero gradient: {dead:?}");
    }

    #[test]
    fn residual_path_dominates_at_init() {
        // At initialization the ViT output is small; the prediction should
        // correlate with the residual path (training stability argument).
        let m = model();
        let tape = Tape::new();
        let binder = Binder::new(&tape, &m.params);
        let input = randn(&[4, 8, 8], 4);
        let (pred, _) = m.forward(&binder, &input, 1.0);
        let res = residual_path(&binder, &m.cfg, &input);
        let p = pred.value();
        let r = res.value();
        // Prediction minus residual (= ViT main output) has bounded scale.
        let vit_part = p.sub(&r);
        assert!(vit_part.data().iter().all(|v| v.abs() < 50.0));
    }

    #[test]
    fn effective_seq_len_accounting() {
        let m = model();
        assert_eq!(m.effective_seq_len(8, 16, 1.0), 32);
        assert_eq!(m.effective_seq_len(8, 16, 4.0), 8);
    }

    #[test]
    fn num_params_close_to_analytic() {
        let m = model();
        let analytic = m.cfg.param_count() as f64;
        let actual = m.num_params() as f64;
        assert!(
            (actual / analytic - 1.0).abs() < 0.25,
            "actual {actual} vs analytic {analytic}"
        );
    }
}
