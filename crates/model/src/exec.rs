//! The execution-context abstraction: one model code path, two runtimes.
//!
//! Every forward function in this crate (blocks, embeddings, paths, the
//! assembled models) is generic over [`Exec`]. Training instantiates it
//! with the tape-recording [`Binder`] (`Value = Var`): every op lands on
//! the gradient tape and stashes whatever its adjoint needs. Inference
//! instantiates it with [`crate::infer::InferenceSession`]
//! (`Value = SessionValue`): the same tensor kernels run directly on
//! pooled tensors — no tape nodes, no pre-activation storage, and linear
//! weights packed once per session instead of once per call.
//!
//! Both implementations route each op through the *same* underlying
//! `orbit2-tensor` kernel (the `Var` forwards are thin wrappers over
//! them), so for identical inputs the two contexts produce bit-identical
//! outputs — the property `tests/tape_free.rs` locks in.

use crate::binder::Binder;
use orbit2_autograd::Var;
use orbit2_tensor::conv::ConvGeom;
use orbit2_tensor::fused::Activation;
use orbit2_tensor::Tensor;
use std::sync::Arc;

/// Shared, immutable row-group list for token pool/unpool.
///
/// A [`crate::compress::CompressionPlan`] builds the groups once; every
/// forward that replays the plan clones an `Arc` pointer instead of deep-
/// copying the nested vectors (the tape impl used to `to_vec()` them on
/// every call — measurable churn in steady-state serving).
pub type RowGroups = Arc<[Vec<usize>]>;

/// An execution context for model forward passes.
///
/// `Value` is the context's handle to an intermediate result: a tape index
/// ([`Var`]) when training, a plain tensor wrapper when running tape-free.
/// Handles are cheap to clone (copy of an index, or a COW tensor handle).
pub trait Exec {
    /// The context's value handle.
    type Value: Clone;

    /// Named model parameter.
    fn param(&self, name: &str) -> Self::Value;

    /// Non-trainable input tensor.
    fn constant(&self, t: Tensor) -> Self::Value;

    /// The concrete tensor behind a value (COW clone, no data copy).
    fn tensor(&self, v: &Self::Value) -> Tensor;

    /// Shape of a value.
    fn shape(&self, v: &Self::Value) -> Vec<usize>;

    /// Elementwise addition with broadcasting.
    fn add(&self, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// Elementwise multiplication with broadcasting.
    fn mul(&self, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// Multiply by a scalar constant.
    fn scale(&self, a: &Self::Value, s: f32) -> Self::Value;

    /// GELU activation (tanh approximation).
    fn gelu(&self, a: &Self::Value) -> Self::Value;

    /// Matrix multiplication of 2-d values.
    fn matmul(&self, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// `a @ b^T` without materializing the transpose.
    fn matmul_nt(&self, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// Row softmax along the last axis.
    fn softmax_last(&self, a: &Self::Value) -> Self::Value;

    /// Slice `axis` to `[start, start + len)`.
    fn slice_axis(&self, a: &Self::Value, axis: usize, start: usize, len: usize) -> Self::Value;

    /// Concatenate along an axis.
    fn concat(&self, parts: &[Self::Value], axis: usize) -> Self::Value;

    /// Gather rows of a 2-d value.
    fn gather_rows(&self, a: &Self::Value, indices: Vec<usize>) -> Self::Value;

    /// Reshape.
    fn reshape(&self, a: &Self::Value, shape: Vec<usize>) -> Self::Value;

    /// Affine map `x @ w^T + bias` (weight layout `[out, in]`).
    fn linear(&self, x: &Self::Value, w: &Self::Value, bias: Option<&Self::Value>) -> Self::Value {
        self.linear_act(x, w, bias, Activation::Identity)
    }

    /// Fused linear layer `act(x @ w^T + bias)`.
    fn linear_act(
        &self,
        x: &Self::Value,
        w: &Self::Value,
        bias: Option<&Self::Value>,
        act: Activation,
    ) -> Self::Value;

    /// Layer norm over the last axis with affine parameters.
    fn layer_norm(
        &self,
        x: &Self::Value,
        gamma: &Self::Value,
        beta: &Self::Value,
        eps: f32,
    ) -> Self::Value;

    /// 2-d convolution `x [N,C,H,W] * w [O,C,KH,KW] (+ bias [O])`.
    fn conv2d(
        &self,
        x: &Self::Value,
        w: &Self::Value,
        bias: Option<&Self::Value>,
        geom: ConvGeom,
    ) -> Self::Value;

    /// Bilinear resize of the trailing two axes.
    fn resize_bilinear(&self, x: &Self::Value, out_h: usize, out_w: usize) -> Self::Value;

    /// Average rows into groups (token compression).
    fn pool_rows(&self, x: &Self::Value, groups: &RowGroups) -> Self::Value;

    /// Broadcast grouped rows back to the full token set.
    fn unpool_rows(&self, x: &Self::Value, groups: &RowGroups, total_rows: usize) -> Self::Value;
}

/// The training context: every op records a tape node via [`Var`].
impl<'t> Exec for Binder<'t, '_> {
    type Value = Var<'t>;

    fn param(&self, name: &str) -> Var<'t> {
        Binder::param(self, name)
    }

    fn constant(&self, t: Tensor) -> Var<'t> {
        Binder::constant(self, t)
    }

    fn tensor(&self, v: &Var<'t>) -> Tensor {
        v.value()
    }

    fn shape(&self, v: &Var<'t>) -> Vec<usize> {
        v.shape()
    }

    fn add(&self, a: &Var<'t>, b: &Var<'t>) -> Var<'t> {
        a.add(*b)
    }

    fn mul(&self, a: &Var<'t>, b: &Var<'t>) -> Var<'t> {
        a.mul(*b)
    }

    fn scale(&self, a: &Var<'t>, s: f32) -> Var<'t> {
        a.scale(s)
    }

    fn gelu(&self, a: &Var<'t>) -> Var<'t> {
        a.gelu()
    }

    fn matmul(&self, a: &Var<'t>, b: &Var<'t>) -> Var<'t> {
        a.matmul(*b)
    }

    fn matmul_nt(&self, a: &Var<'t>, b: &Var<'t>) -> Var<'t> {
        a.matmul_nt(*b)
    }

    fn softmax_last(&self, a: &Var<'t>) -> Var<'t> {
        a.softmax_last()
    }

    fn slice_axis(&self, a: &Var<'t>, axis: usize, start: usize, len: usize) -> Var<'t> {
        a.slice_axis(axis, start, len)
    }

    fn concat(&self, parts: &[Var<'t>], axis: usize) -> Var<'t> {
        Var::concat(parts, axis)
    }

    fn gather_rows(&self, a: &Var<'t>, indices: Vec<usize>) -> Var<'t> {
        a.gather_rows(indices)
    }

    fn reshape(&self, a: &Var<'t>, shape: Vec<usize>) -> Var<'t> {
        a.reshape(shape)
    }

    fn linear_act(
        &self,
        x: &Var<'t>,
        w: &Var<'t>,
        bias: Option<&Var<'t>>,
        act: Activation,
    ) -> Var<'t> {
        x.linear_act(*w, bias.copied(), act)
    }

    fn layer_norm(&self, x: &Var<'t>, gamma: &Var<'t>, beta: &Var<'t>, eps: f32) -> Var<'t> {
        x.layer_norm(*gamma, *beta, eps)
    }

    fn conv2d(&self, x: &Var<'t>, w: &Var<'t>, bias: Option<&Var<'t>>, geom: ConvGeom) -> Var<'t> {
        x.conv2d(*w, bias.copied(), geom)
    }

    fn resize_bilinear(&self, x: &Var<'t>, out_h: usize, out_w: usize) -> Var<'t> {
        x.resize_bilinear(out_h, out_w)
    }

    fn pool_rows(&self, x: &Var<'t>, groups: &RowGroups) -> Var<'t> {
        x.pool_rows(Arc::clone(groups))
    }

    fn unpool_rows(&self, x: &Var<'t>, groups: &RowGroups, total_rows: usize) -> Var<'t> {
        x.unpool_rows(Arc::clone(groups), total_rows)
    }
}
