//! ORBIT-2 reproduction — workspace root crate.
//!
//! The implementation lives in `crates/`:
//!
//! | crate | role |
//! |---|---|
//! | `orbit2-tensor` | CPU tensor library (matmul, conv, attention, resize) |
//! | `orbit2-autograd` | reverse-mode autodiff, optimizers, grad scaling |
//! | `orbit2-fft` | FFTs and power spectra |
//! | `orbit2-imaging` | Canny, quad-tree patching, tile/halo geometry |
//! | `orbit2-climate` | synthetic ERA5/DAYMET/IMERG-like data substrate |
//! | `orbit2-metrics` | R², RMSE, quantile RMSE, SSIM, PSNR |
//! | `orbit2-cluster` | Frontier-like performance simulator |
//! | `orbit2-parallel` | DDP / FSDP / tensor / TILES parallelism models |
//! | `orbit2-model` | Reslim + baseline ViT architectures |
//! | `orbit2` | trainer, inference, planner — the public API |
//! | `orbit2-bench` | `repro` binary + criterion benches |
//!
//! This package hosts the cross-crate integration tests (`tests/`) and the
//! runnable examples (`examples/`).
