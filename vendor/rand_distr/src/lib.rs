//! Offline stand-in for `rand_distr`: the [`Distribution`] trait plus
//! [`StandardNormal`] via Box–Muller.

use rand::RngCore;

/// A sampleable distribution over `T`.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard normal distribution N(0, 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct StandardNormal;

fn box_muller<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1]: avoids ln(0).
    let u1 = ((rng.next_u64() >> 11) as f64 + 1.0) * (1.0 / (1u64 << 53) as f64);
    let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        box_muller(rng)
    }
}

impl Distribution<f32> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        box_muller(rng) as f32
    }
}

/// Normal distribution with configurable mean and standard deviation.
#[derive(Clone, Copy, Debug)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

/// Error constructing a [`Normal`].
#[derive(Debug)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid normal distribution parameters")
    }
}

impl std::error::Error for NormalError {}

impl Normal {
    /// N(mean, std_dev^2); `std_dev` must be finite and nonnegative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if std_dev.is_finite() && std_dev >= 0.0 {
            Ok(Self { mean, std_dev })
        } else {
            Err(NormalError)
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * box_muller(rng)
    }
}

impl Distribution<f32> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (self.mean + self.std_dev * box_muller(rng)) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = Lcg(12345);
        let xs: Vec<f64> = (0..20_000).map(|_| StandardNormal.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
