//! Offline stand-in for `serde_json`: renders the serde shim's [`Value`]
//! tree to JSON text and parses it back.

pub use serde::Value;

/// JSON serialization/parse error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self(e.to_string())
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serialize to 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::deserialize_value(&v)?)
}

// -- printer ----------------------------------------------------------------

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; match serde_json's lossy `null`.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{}` on f64 is the shortest string that round-trips.
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// -- parser -----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn consume_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.consume_keyword("null").map(|_| Value::Null),
            Some(b't') => self.consume_keyword("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.consume_keyword("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number `{text}` at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Bulk-copy the run of plain bytes before the next escape/quote.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Non-BMP pairs are not produced by this printer;
                            // lone surrogates decode to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                None => return Err(Error::new("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn round_trip_compact_and_pretty() {
        let mut m: BTreeMap<String, (Vec<usize>, Vec<f32>)> = BTreeMap::new();
        m.insert("layer.w".into(), (vec![2, 3], vec![0.5, -1.25, 3.0, 4.0, 5.5, -6.0]));
        for text in [to_string(&m).unwrap(), to_string_pretty(&m).unwrap()] {
            let back: BTreeMap<String, (Vec<usize>, Vec<f32>)> = from_str(&text).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn parses_escapes_and_nested() {
        let v: Value = from_str(r#"{"a\n\"b": [1, -2.5, true, null, "x"], "c": {}}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert!(obj.contains_key("a\n\"b"));
        assert_eq!(obj["a\n\"b"].as_array().unwrap().len(), 5);
    }

    #[test]
    fn float_round_trip_exact() {
        let xs = vec![0.1f32, -1e-7, 3.4e38, 1.0, -0.0];
        let text = to_string(&xs).unwrap();
        let back: Vec<f32> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{pancake}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
