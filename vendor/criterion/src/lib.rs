//! Offline stand-in for `criterion`.
//!
//! Same authoring API (`criterion_group!`/`criterion_main!`, benchmark
//! groups, `Bencher::iter`) but a much simpler runner: a calibration pass
//! picks an iteration count targeting a fixed per-sample duration, then each
//! sample times that many iterations. Results are printed as a human line
//! plus a `BENCH_JSON {...}` line that `scripts/bench_smoke.sh` collects
//! into `BENCH_kernels.json`.

use std::fmt::Display;
use std::time::Instant;

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

const TARGET_SAMPLE_NANOS: f64 = 5.0e6;
const MAX_ITERS_PER_SAMPLE: u64 = 1_000;

/// Top-level bench context handed to `criterion_group!` functions.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo-bench forwards CLI args (a name filter, plus flags like
        // `--bench`); keep the first non-flag arg as a substring filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 20, criterion: self }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut group = self.benchmark_group(name.to_string());
        group.run_one(name.to_string(), |b| f(b));
        group.finish();
        self
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark `f` with `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(id.id, |b| f(b, input));
        self
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self {
        self.run_one(id.id, |b| f(b));
        self
    }

    fn run_one(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        // Calibrate: one iteration, then scale toward the target sample time.
        let mut bencher = Bencher { iters: 1, nanos_per_iter: 0.0 };
        f(&mut bencher);
        let est = bencher.nanos_per_iter.max(1.0);
        let iters = ((TARGET_SAMPLE_NANOS / est) as u64).clamp(1, MAX_ITERS_PER_SAMPLE);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher { iters, nanos_per_iter: 0.0 };
            f(&mut bencher);
            samples.push(bencher.nanos_per_iter);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{full:<40} median {:>12} mean {:>12} min {:>12} ({} samples x {iters} iters)",
            fmt_nanos(median),
            fmt_nanos(mean),
            fmt_nanos(min),
            samples.len(),
        );
        println!(
            "BENCH_JSON {{\"bench\":\"{full}\",\"median_ns\":{median:.1},\"mean_ns\":{mean:.1},\
             \"min_ns\":{min:.1},\"samples\":{},\"iters\":{iters}}}",
            samples.len(),
        );
    }

    /// End the group (reporting happens eagerly; this is for API parity).
    pub fn finish(self) {}
}

fn fmt_nanos(ns: f64) -> String {
    if ns >= 1.0e9 {
        format!("{:.3} s", ns / 1.0e9)
    } else if ns >= 1.0e6 {
        format!("{:.3} ms", ns / 1.0e6)
    } else if ns >= 1.0e3 {
        format!("{:.3} us", ns / 1.0e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Times closures for one sample.
pub struct Bencher {
    iters: u64,
    nanos_per_iter: f64,
}

impl Bencher {
    /// Run `f` for this sample's iteration count, recording mean ns/iter.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| {
                calls += 1;
                (0..n).sum::<u64>()
            })
        });
        group.finish();
        assert!(calls > 0);
    }
}
