//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of rayon's API the workspace uses. Parallel iterators are
//! *indexed*: every shape knows its length and can split at an index, so a
//! terminal operation partitions the work into contiguous balanced pieces
//! and submits one job per piece to a **persistent global worker registry**
//! (like real rayon's thread pool). Persistent workers matter beyond spawn
//! cost: downstream thread-local state — notably `orbit2-tensor`'s buffer
//! pool — survives across parallel calls, so a trainer step's tile workers
//! reuse the same scratch buffers step after step.
//!
//! Nested parallel calls on a worker run inline (sequentially) instead of
//! re-submitting to the registry, which keeps the design deadlock-free
//! without work stealing. Semantics match rayon where it matters here:
//! items are processed exactly once, `collect` preserves order, and worker
//! panics propagate to the caller.

// The workspace lint gate denies `unsafe_code`; this shim carries the one
// audited exception (the scoped-job lifetime transmute in `run_jobs`, made
// sound by the completion latch that joins every job before the caller's
// frame unwinds).
#![allow(unsafe_code)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once, OnceLock};

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

thread_local! {
    static THREAD_BUDGET: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The number of worker threads a parallel call may use on this thread.
pub fn current_num_threads() -> usize {
    THREAD_BUDGET.with(|c| c.get()).unwrap_or_else(default_threads)
}

fn with_budget<R>(budget: usize, f: impl FnOnce() -> R) -> R {
    THREAD_BUDGET.with(|c| {
        let prev = c.get();
        c.set(Some(budget.max(1)));
        let out = f();
        c.set(prev);
        out
    })
}

// ---------------------------------------------------------------------------
// Persistent worker registry
// ---------------------------------------------------------------------------

thread_local! {
    /// Set once on registry worker threads; nested parallel calls check it
    /// and run inline instead of re-submitting (deadlock avoidance).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// A unit of work dispatched to the registry. `'env` jobs borrow from the
/// dispatching stack frame; [`run_jobs`] erases the lifetime and restores
/// soundness by blocking until every job has completed.
type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Completion barrier for one batch of jobs.
#[derive(Default)]
struct Latch {
    done: Mutex<usize>,
    all_done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn complete(&self) {
        let mut done = self.done.lock().unwrap();
        *done += 1;
        self.all_done.notify_all();
    }

    fn wait(&self, target: usize) {
        let mut done = self.done.lock().unwrap();
        while *done < target {
            done = self.all_done.wait(done).unwrap();
        }
    }
}

struct Registry {
    jobs: Mutex<VecDeque<Job<'static>>>,
    ready: Condvar,
}

/// The process-wide worker registry; `default_threads()` workers are spawned
/// on first use and live for the rest of the process. Keeping the same OS
/// threads alive is what lets worker-side `thread_local!` state (e.g. the
/// tensor buffer pool) accumulate across parallel calls.
fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    static SPAWN: Once = Once::new();
    let reg = REG.get_or_init(|| Registry { jobs: Mutex::new(VecDeque::new()), ready: Condvar::new() });
    SPAWN.call_once(|| {
        for i in 0..default_threads() {
            std::thread::Builder::new()
                .name(format!("orbit2-rayon-{i}"))
                .spawn(move || worker_loop(reg))
                .expect("failed to spawn rayon shim worker");
        }
    });
    reg
}

fn worker_loop(reg: &'static Registry) {
    IN_WORKER.with(|c| c.set(true));
    // A worker owns exactly one piece at a time, so nested parallel calls on
    // it should not split further.
    THREAD_BUDGET.with(|c| c.set(Some(1)));
    loop {
        let job = {
            let mut pending = reg.jobs.lock().unwrap();
            loop {
                match pending.pop_front() {
                    Some(job) => break job,
                    None => pending = reg.ready.wait(pending).unwrap(),
                }
            }
        };
        job();
    }
}

/// Submit a detached job to the persistent worker registry (fire and
/// forget). Unlike the scoped batches [`run_jobs`] drives, the closure owns
/// its data (`'static` bound, no lifetime erasure) and no caller blocks on
/// it: the serving layer uses this to execute microbatches concurrently
/// with request intake. A panic inside the job is caught and swallowed —
/// a detached job has no caller frame to re-panic in, and poisoning the
/// worker would starve every later parallel call.
pub fn spawn<F: FnOnce() + Send + 'static>(f: F) {
    let reg = registry();
    {
        let mut pending = reg.jobs.lock().unwrap();
        pending.push_back(Box::new(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        }));
    }
    reg.ready.notify_one();
}

/// Execute a batch of jobs on the registry and block until all complete.
/// Runs inline when there is nothing to parallelise or when already on a
/// worker thread. Panics in any job re-panic here after the batch drains.
fn run_jobs(jobs: Vec<Job<'_>>) {
    let total = jobs.len();
    if total == 0 {
        return;
    }
    if total == 1 || IN_WORKER.with(|c| c.get()) {
        for job in jobs {
            job();
        }
        return;
    }
    let latch = Arc::new(Latch::default());
    let reg = registry();
    {
        let mut pending = reg.jobs.lock().unwrap();
        for job in jobs {
            // SAFETY: the borrows captured by `job` stay valid until this
            // function returns, and it only returns after `latch.wait`
            // observes every job finished — workers signal completion even
            // when a job panics (caught below), so the erased lifetime can
            // never be observed dangling.
            let job: Job<'static> = unsafe { std::mem::transmute(job) };
            let latch = Arc::clone(&latch);
            pending.push_back(Box::new(move || {
                if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
                    latch.panicked.store(true, Ordering::Relaxed);
                }
                latch.complete();
            }));
        }
        reg.ready.notify_all();
    }
    latch.wait(total);
    if latch.panicked.load(Ordering::Relaxed) {
        panic!("rayon shim worker panicked");
    }
}

/// An indexed parallel iterator: splittable at an index, convertible to a
/// sequential iterator for per-piece execution.
pub trait ParallelIterator: Sized + Send {
    /// Item type produced by the iterator.
    type Item: Send;
    /// Sequential iterator driving one piece.
    type SeqIter: Iterator<Item = Self::Item>;

    /// Exact number of items.
    fn par_len(&self) -> usize;
    /// Split into `[0, at)` and `[at, len)` pieces.
    fn split_at(self, at: usize) -> (Self, Self);
    /// Sequential traversal of this piece.
    fn into_seq(self) -> Self::SeqIter;

    /// Map each item through `f`.
    fn map<R: Send, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f: Arc::new(f) }
    }

    /// Pair items with another parallel iterator (truncates to the shorter).
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Pair each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self, offset: 0 }
    }

    /// Run `f` on every item, in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        map_pieces(self, |piece| piece.into_seq().for_each(&f));
    }

    /// Collect items in order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sum the items, in parallel.
    fn sum<S>(self) -> S
    where
        S: ParallelSum<Self::Item>,
    {
        S::par_sum(self)
    }
}

/// Split an iterator into at most `current_num_threads()` contiguous pieces
/// of near-equal length.
fn balanced_pieces<I: ParallelIterator>(iter: I) -> Vec<I> {
    let len = iter.par_len();
    let want = current_num_threads().min(len).max(1);
    let mut out = Vec::with_capacity(want);
    let mut rest = iter;
    let mut remaining_items = len;
    let mut remaining_parts = want;
    while remaining_parts > 1 {
        let take = remaining_items.div_ceil(remaining_parts);
        let (head, tail) = rest.split_at(take);
        out.push(head);
        rest = tail;
        remaining_items -= take;
        remaining_parts -= 1;
    }
    out.push(rest);
    out
}

/// Run one closure per piece on the worker registry, returning per-piece
/// results in order.
fn map_pieces<I, R, F>(iter: I, f: F) -> Vec<R>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let pieces = balanced_pieces(iter);
    if pieces.len() == 1 {
        return pieces.into_iter().map(f).collect();
    }
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(pieces.len(), || None);
    let jobs: Vec<Job<'_>> = pieces
        .into_iter()
        .zip(slots.iter_mut())
        .map(|(piece, slot)| {
            let f = &f;
            Box::new(move || *slot = Some(f(piece))) as Job<'_>
        })
        .collect();
    run_jobs(jobs);
    slots.into_iter().map(|s| s.expect("registry completed every piece")).collect()
}

/// Order-preserving parallel collect target.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build the collection from a parallel iterator.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let total = iter.par_len();
        let chunks = map_pieces(iter, |piece| piece.into_seq().collect::<Vec<T>>());
        let mut out = Vec::with_capacity(total);
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }
}

/// Parallel summation for the scalar types the workspace reduces over.
pub trait ParallelSum<Item>: Send {
    /// Sum all items of the iterator.
    fn par_sum<I: ParallelIterator<Item = Item>>(iter: I) -> Self;
}

macro_rules! impl_parallel_sum {
    ($($t:ty),*) => {$(
        impl ParallelSum<$t> for $t {
            fn par_sum<I: ParallelIterator<Item = $t>>(iter: I) -> Self {
                map_pieces(iter, |piece| piece.into_seq().fold(<$t>::default(), |a, b| a + b))
                    .into_iter()
                    .fold(<$t>::default(), |a, b| a + b)
            }
        }
    )*};
}

impl_parallel_sum!(f32, f64, usize, u64, i64);

// ---------------------------------------------------------------------------
// Conversions into parallel iterators
// ---------------------------------------------------------------------------

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// `.par_iter()` on shared references (rayon's blanket-style trait).
pub trait IntoParallelRefIterator<'a> {
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type.
    type Item: Send + 'a;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

/// `.par_iter_mut()` on exclusive references.
pub trait IntoParallelRefMutIterator<'a> {
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type.
    type Item: Send + 'a;
    /// Mutably borrowing parallel iterator.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: 'a + ?Sized> IntoParallelRefIterator<'a> for T
where
    &'a T: IntoParallelIterator,
{
    type Iter = <&'a T as IntoParallelIterator>::Iter;
    type Item = <&'a T as IntoParallelIterator>::Item;
    fn par_iter(&'a self) -> Self::Iter {
        self.into_par_iter()
    }
}

impl<'a, T: 'a + ?Sized> IntoParallelRefMutIterator<'a> for T
where
    &'a mut T: IntoParallelIterator,
{
    type Iter = <&'a mut T as IntoParallelIterator>::Iter;
    type Item = <&'a mut T as IntoParallelIterator>::Item;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Parallel iterator over `&[T]`.
pub struct SlicePar<'a, T: Sync>(&'a [T]);

impl<'a, T: Sync> ParallelIterator for SlicePar<'a, T> {
    type Item = &'a T;
    type SeqIter = std::slice::Iter<'a, T>;
    fn par_len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, at: usize) -> (Self, Self) {
        let (a, b) = self.0.split_at(at);
        (SlicePar(a), SlicePar(b))
    }
    fn into_seq(self) -> Self::SeqIter {
        self.0.iter()
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct SliceParMut<'a, T: Send>(&'a mut [T]);

impl<'a, T: Send> ParallelIterator for SliceParMut<'a, T> {
    type Item = &'a mut T;
    type SeqIter = std::slice::IterMut<'a, T>;
    fn par_len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, at: usize) -> (Self, Self) {
        let (a, b) = self.0.split_at_mut(at);
        (SliceParMut(a), SliceParMut(b))
    }
    fn into_seq(self) -> Self::SeqIter {
        self.0.iter_mut()
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = SlicePar<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> Self::Iter {
        SlicePar(self)
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = SlicePar<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> Self::Iter {
        SlicePar(self)
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Iter = SliceParMut<'a, T>;
    type Item = &'a mut T;
    fn into_par_iter(self) -> Self::Iter {
        SliceParMut(self)
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
    type Iter = SliceParMut<'a, T>;
    type Item = &'a mut T;
    fn into_par_iter(self) -> Self::Iter {
        SliceParMut(self)
    }
}

/// Parallel iterator over an index range.
pub struct RangePar(Range<usize>);

impl ParallelIterator for RangePar {
    type Item = usize;
    type SeqIter = Range<usize>;
    fn par_len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, at: usize) -> (Self, Self) {
        let mid = self.0.start + at;
        (RangePar(self.0.start..mid), RangePar(mid..self.0.end))
    }
    fn into_seq(self) -> Self::SeqIter {
        self.0
    }
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangePar;
    type Item = usize;
    fn into_par_iter(self) -> Self::Iter {
        RangePar(self)
    }
}

// ---------------------------------------------------------------------------
// Slice chunking
// ---------------------------------------------------------------------------

/// `.par_chunks()` support.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `size`-element chunks.
    fn par_chunks(&self, size: usize) -> ChunksPar<'_, T>;
}

/// `.par_chunks_mut()` support.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable `size`-element chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ChunksParMut<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ChunksPar<'_, T> {
        assert!(size > 0, "chunk size must be nonzero");
        ChunksPar { slice: self, size }
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ChunksParMut<'_, T> {
        assert!(size > 0, "chunk size must be nonzero");
        ChunksParMut { slice: self, size }
    }
}

/// Parallel chunks of a shared slice.
pub struct ChunksPar<'a, T: Sync> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksPar<'a, T> {
    type Item = &'a [T];
    type SeqIter = std::slice::Chunks<'a, T>;
    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, at: usize) -> (Self, Self) {
        let mid = (at * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at(mid);
        (ChunksPar { slice: a, size: self.size }, ChunksPar { slice: b, size: self.size })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.slice.chunks(self.size)
    }
}

/// Parallel chunks of an exclusive slice.
pub struct ChunksParMut<'a, T: Send> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelIterator for ChunksParMut<'a, T> {
    type Item = &'a mut [T];
    type SeqIter = std::slice::ChunksMut<'a, T>;
    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, at: usize) -> (Self, Self) {
        let mid = (at * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(mid);
        (ChunksParMut { slice: a, size: self.size }, ChunksParMut { slice: b, size: self.size })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.slice.chunks_mut(self.size)
    }
}

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

/// Mapped parallel iterator; the closure is shared across pieces via `Arc`.
pub struct Map<I, F> {
    base: I,
    f: Arc<F>,
}

/// Sequential side of [`Map`].
pub struct MapSeq<It, F> {
    it: It,
    f: Arc<F>,
}

impl<It, F, R> Iterator for MapSeq<It, F>
where
    It: Iterator,
    F: Fn(It::Item) -> R,
{
    type Item = R;
    fn next(&mut self) -> Option<R> {
        self.it.next().map(|x| (self.f)(x))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.it.size_hint()
    }
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Sync + Send,
    R: Send,
{
    type Item = R;
    type SeqIter = MapSeq<I::SeqIter, F>;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn split_at(self, at: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(at);
        (Map { base: a, f: Arc::clone(&self.f) }, Map { base: b, f: self.f })
    }
    fn into_seq(self) -> Self::SeqIter {
        MapSeq { it: self.base.into_seq(), f: self.f }
    }
}

/// Zipped pair of parallel iterators.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    type SeqIter = std::iter::Zip<A::SeqIter, B::SeqIter>;
    fn par_len(&self) -> usize {
        self.a.par_len().min(self.b.par_len())
    }
    fn split_at(self, at: usize) -> (Self, Self) {
        let (a0, a1) = self.a.split_at(at);
        let (b0, b1) = self.b.split_at(at);
        (Zip { a: a0, b: b0 }, Zip { a: a1, b: b1 })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

/// Index-tagged parallel iterator.
pub struct Enumerate<I> {
    base: I,
    offset: usize,
}

/// Sequential side of [`Enumerate`]: `std::iter::Enumerate` shifted by the
/// piece's global offset.
pub struct EnumerateSeq<It> {
    it: It,
    index: usize,
}

impl<It: Iterator> Iterator for EnumerateSeq<It> {
    type Item = (usize, It::Item);
    fn next(&mut self) -> Option<Self::Item> {
        let x = self.it.next()?;
        let i = self.index;
        self.index += 1;
        Some((i, x))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.it.size_hint()
    }
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    type SeqIter = EnumerateSeq<I::SeqIter>;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn split_at(self, at: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(at);
        (
            Enumerate { base: a, offset: self.offset },
            Enumerate { base: b, offset: self.offset + at },
        )
    }
    fn into_seq(self) -> Self::SeqIter {
        EnumerateSeq { it: self.base.into_seq(), index: self.offset }
    }
}

// ---------------------------------------------------------------------------
// Thread pool facade
// ---------------------------------------------------------------------------

/// Error from [`ThreadPoolBuilder::build`] (never produced by the shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// New builder with default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the pool at `n` threads.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { threads: self.num_threads.unwrap_or_else(default_threads).max(1) })
    }
}

/// A scoped thread budget: `install` runs the closure with parallel calls
/// limited to this pool's thread count.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `f` under this pool's thread budget.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        with_budget(self.threads, f)
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 || IN_WORKER.with(|c| c.get()) {
        return (a(), b());
    }
    let mut ra = None;
    let mut rb = None;
    run_jobs(vec![
        Box::new(|| ra = Some(a())) as Job<'_>,
        Box::new(|| rb = Some(b())) as Job<'_>,
    ]);
    (ra.expect("join left arm completed"), rb.expect("join right arm completed"))
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn zip_for_each_mutates_all() {
        let a = vec![1.0f32; 4097];
        let b = vec![2.0f32; 4097];
        let mut out = vec![0.0f32; 4097];
        out.par_iter_mut()
            .zip(a.par_iter().zip(b.par_iter()))
            .for_each(|(o, (&x, &y))| *o = x + y);
        assert!(out.iter().all(|&x| x == 3.0));
    }

    #[test]
    fn chunks_mut_enumerate_sees_global_indices() {
        let mut buf = vec![0usize; 103];
        buf.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for c in chunk.iter_mut() {
                *c = i;
            }
        });
        assert_eq!(buf[0], 0);
        assert_eq!(buf[95], 9);
        assert_eq!(buf[102], 10);
    }

    #[test]
    fn sum_matches_sequential() {
        let s: f64 = (0..10_000usize).into_par_iter().map(|i| i as f64).sum();
        assert_eq!(s, (10_000.0 * 9_999.0) / 2.0);
    }

    #[test]
    fn pool_install_limits_budget() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
    }

    #[test]
    fn registry_reuses_a_bounded_set_of_threads() {
        // With per-call scoped threads, 20 calls would mint ~20×N distinct
        // thread ids (ids are never reused in-process). The persistent
        // registry keeps executing on the same N workers (+ the caller for
        // inline pieces).
        let all = Mutex::new(std::collections::HashSet::new());
        for _ in 0..20 {
            (0..1024usize).into_par_iter().for_each(|_| {
                all.lock().unwrap().insert(std::thread::current().id());
            });
        }
        let distinct = all.into_inner().unwrap().len();
        assert!(
            distinct <= default_threads() + 1,
            "expected at most {} persistent workers, saw {} distinct threads",
            default_threads() + 1,
            distinct
        );
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            (0..1000usize).into_par_iter().for_each(|i| {
                assert!(i != 777, "boom");
            });
        });
        assert!(result.is_err(), "a panicking piece must fail the parallel call");
    }

    #[test]
    fn spawn_runs_detached_jobs() {
        let done = Arc::new(Latch::default());
        for _ in 0..16 {
            let done = Arc::clone(&done);
            spawn(move || done.complete());
        }
        done.wait(16);
    }

    #[test]
    fn spawn_survives_panicking_job() {
        let done = Arc::new(Latch::default());
        spawn(|| panic!("detached boom"));
        let d = Arc::clone(&done);
        spawn(move || d.complete());
        done.wait(1);
        // The registry still serves scoped work afterwards.
        let s: usize = (0..100usize).into_par_iter().sum();
        assert_eq!(s, 4950);
    }

    #[test]
    fn nested_parallel_calls_complete() {
        // Inner calls land on registry workers and must run inline there
        // instead of deadlocking on the (busy) registry.
        let sums: Vec<usize> = (0..8usize)
            .into_par_iter()
            .map(|i| (0..100usize).into_par_iter().map(move |j| i + j).sum::<usize>())
            .collect();
        assert_eq!(sums.len(), 8);
        for (i, s) in sums.iter().enumerate() {
            assert_eq!(*s, 100 * i + 4950);
        }
    }
}
