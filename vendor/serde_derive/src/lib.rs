//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for exactly
//! the shapes this workspace uses: non-generic structs with named fields and
//! enums with unit variants, no `#[serde(...)]` attributes. The input token
//! stream is walked by hand (no `syn`/`quote` — nothing external resolves
//! offline) and the impls are emitted as formatted source.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Skip one attribute: the caller has consumed `#`; consume the `[...]`.
fn skip_attr(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if let Some(TokenTree::Group(g)) = iter.peek() {
        if g.delimiter() == Delimiter::Bracket {
            iter.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => skip_attr(&mut iter),
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw != "struct" && kw != "enum" {
                    // `pub`, `pub(crate)` etc. — ignore and keep scanning.
                    continue;
                }
                let name = match iter.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("serde_derive shim: expected item name, got {other:?}"),
                };
                // The brace body must follow the name immediately; anything
                // between them (e.g. generics) is unsupported by the shim.
                return match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        if kw == "struct" {
                            Item::Struct { name, fields: named_fields(g.stream()) }
                        } else {
                            Item::Enum { name, variants: unit_variants(g.stream()) }
                        }
                    }
                    None => panic!("serde_derive shim: `{name}` has no brace-delimited body"),
                    other => panic!(
                        "serde_derive shim: `{name}` has tokens between name and body \
                         (generics/tuple struct?), unsupported: {other:?}"
                    ),
                };
            }
            _ => {}
        }
    }
    panic!("serde_derive shim: no struct or enum found in derive input");
}

/// Field names of a named-field struct body, skipping attributes,
/// visibility, and the type after each `:` (tracking `<...>` nesting so
/// commas inside generic arguments don't split fields).
fn named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        let name = loop {
            match iter.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => skip_attr(&mut iter),
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("serde_derive shim: unexpected token in struct body: {other:?}"),
            }
        };
        fields.push(name);
        let mut angle = 0i32;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
        }
    }
}

/// Variant names of a unit-variant enum body.
fn unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => skip_attr(&mut iter),
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            TokenTree::Ident(id) => variants.push(id.to_string()),
            TokenTree::Group(g) => panic!(
                "serde_derive shim: non-unit enum variant payload {g:?} unsupported"
            ),
            other => panic!("serde_derive shim: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let src = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "m.insert({f:?}.to_string(), ::serde::Serialize::serialize_value(&self.{f}));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         let mut m = ::std::collections::BTreeMap::new();\n\
                         {inserts}\
                         ::serde::Value::Object(m)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::String({v:?}.to_string()),\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().expect("serde_derive shim: generated Serialize impl did not parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let src = match parse_item(input) {
        Item::Struct { name, fields } => {
            let field_inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize_value(obj.get({f:?})\
                             .ok_or_else(|| ::serde::Error::new(concat!(\"missing field `\", {f:?}, \"`\")))?)?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let obj = value.as_object()\
                             .ok_or_else(|| ::serde::Error::new(concat!(\"expected object for \", stringify!({name}))))?;\n\
                         Ok(Self {{ {field_inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Some({v:?}) => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match value.as_str() {{\n\
                             {arms}\
                             other => Err(::serde::Error::new(format!(\n\
                                 \"unknown variant {{other:?}} for {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().expect("serde_derive shim: generated Deserialize impl did not parse")
}
