//! Offline stand-in for the `rand` crate: the trait surface the workspace
//! uses (`RngCore`, `Rng::gen_range`, `SeedableRng::seed_from_u64`).
//!
//! Concrete generators live in the sibling `rand_chacha` shim; distributions
//! in `rand_distr`.

use std::ops::Range;

/// Core random source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A half-open range a value can be drawn from.
pub trait SampleRange {
    /// The sampled type.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample_one<G: RngCore + ?Sized>(self, rng: &mut G) -> Self::Output;
}

/// Uniform `f32` in `[0, 1)` using the high 24 bits.
fn unit_f32<G: RngCore + ?Sized>(rng: &mut G) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Uniform `f64` in `[0, 1)` using the high 53 bits.
fn unit_f64<G: RngCore + ?Sized>(rng: &mut G) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_one<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f32(rng) * (self.end - self.start)
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_one<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_one<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift keeps the draw unbiased enough for test data.
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_one(self)
    }

    /// Uniform draw of a canonical value (`f32`/`f64` in `[0,1)`, full-width
    /// integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::gen_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a canonical "standard" distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn gen_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}

impl Standard for f32 {
    fn gen_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        unit_f32(rng)
    }
}

impl Standard for f64 {
    fn gen_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        unit_f64(rng)
    }
}

impl Standard for u32 {
    fn gen_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn gen_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn gen_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-3.0f32..3.0);
            assert!((-3.0..3.0).contains(&f));
            let i = rng.gen_range(5usize..17);
            assert!((5..17).contains(&i));
            let n = rng.gen_range(-10i32..-2);
            assert!((-10..-2).contains(&n));
        }
    }

    #[test]
    fn unit_draws_cover_interval() {
        let mut rng = SplitMix(3);
        let xs: Vec<f32> = (0..4000).map(|_| rng.gen::<f32>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }
}
