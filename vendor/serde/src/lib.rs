//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor-based data model, this shim serializes through
//! a concrete [`Value`] tree (the JSON data model), which is all the
//! workspace needs: `#[derive(Serialize, Deserialize)]` on plain structs and
//! unit enums, rendered to and from JSON by the `serde_json` shim.

use std::collections::BTreeMap;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`; integers up to 2^53 are exact).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// A key-ordered map.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The map inside an `Object`, if this is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The items inside an `Array`, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string inside a `String`, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number inside a `Number`, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    /// An error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable to a [`Value`].
pub trait Serialize {
    /// Convert to a value tree.
    fn serialize_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct from a value tree.
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

// -- primitives -------------------------------------------------------------

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| Error::new(concat!("expected number for ", stringify!($t))))
            }
        }
    )*};
}

impl_num!(f32, f64, usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_owned).ok_or_else(|| Error::new("expected string"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for &str {
    fn serialize_value(&self) -> Value {
        Value::String((*self).to_owned())
    }
}

impl Deserialize for &'static str {
    /// Static tables (e.g. dataset catalogs) derive `Deserialize` with
    /// `&'static str` fields; reconstructing one must allocate, so the shim
    /// leaks the string. Only ever exercised by explicit round-trip tests.
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(|s| &*Box::leak(s.to_owned().into_boxed_str()))
            .ok_or_else(|| Error::new("expected string"))
    }
}

// -- containers -------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize_value(value)?;
        items
            .try_into()
            .map_err(|v: Vec<T>| Error::new(format!("expected array of {N}, got {}", v.len())))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.serialize_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| Error::new("expected tuple array"))?;
                let mut it = items.iter();
                Ok(($(
                    $name::deserialize_value(
                        it.next().ok_or_else(|| Error::new("tuple too short"))?,
                    )?,
                )+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let v = 3.5f32.serialize_value();
        assert_eq!(f32::deserialize_value(&v).unwrap(), 3.5);
        let v = 42usize.serialize_value();
        assert_eq!(usize::deserialize_value(&v).unwrap(), 42);
        let v = "hi".to_string().serialize_value();
        assert_eq!(String::deserialize_value(&v).unwrap(), "hi");
    }

    #[test]
    fn nested_containers_round_trip() {
        let mut m: BTreeMap<String, (Vec<usize>, Vec<f32>)> = BTreeMap::new();
        m.insert("w".into(), (vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]));
        let v = m.serialize_value();
        let back: BTreeMap<String, (Vec<usize>, Vec<f32>)> =
            Deserialize::deserialize_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
