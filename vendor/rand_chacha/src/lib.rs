//! Offline stand-in for `rand_chacha`, providing [`ChaCha8Rng`].
//!
//! This is a genuine ChaCha8 keystream (the full quarter-round schedule, 8
//! rounds), so streams are platform-independent and deterministic for a given
//! seed — the property the workspace's seeded tests rely on. The exact
//! stream does not byte-match the upstream crate (seed expansion differs),
//! which no test depends on.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, seeded from a `u64`.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next word to serve from `block`.
    cursor: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of column + diagonal quarter-rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(self.state.iter())) {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for i in 0..4 {
            let k = splitmix64(&mut sm);
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // Counter and nonce start at zero.
        let mut rng = Self { state, block: [0; 16], cursor: 16 };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "{same} of 32 words collide");
    }

    #[test]
    fn range_sampling_compiles_on_chacha() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let x = rng.gen_range(0.0f32..1.0);
        assert!((0.0..1.0).contains(&x));
    }
}
