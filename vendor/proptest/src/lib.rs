//! Offline stand-in for `proptest`.
//!
//! Supports the surface this workspace uses: range and `Just` strategies,
//! tuples, `collection::vec`, `prop_map`/`prop_flat_map`, the `proptest!`
//! macro with `#![proptest_config(...)]`, and the `prop_assert*` /
//! `prop_assume!` macros. Failing cases report their seed but are NOT
//! shrunk — rerun with the seed to debug.

/// Deterministic per-case RNG (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for the given seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` was violated; the case is retried with new inputs.
    Reject,
    /// An assertion failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (assumption not met).
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config requiring `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

pub mod strategy {
    use super::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree and no shrinking; a
    /// strategy is just a seeded generator.
    pub trait Strategy: Sized {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy applying `f` to each generated value.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F> {
            Map { inner: self, f }
        }

        /// A strategy generating a value, then sampling from the strategy
        /// `f` builds from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F> {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of the same value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty float range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_range!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Lengths acceptable to [`vec`]: an exact `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Pick a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.clone().generate(rng)
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// A `Vec` strategy with elements from `element` and length from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drive `case` until `config.cases` cases pass; panic on the first failure
/// or when rejections overwhelm the run.
pub fn run_cases<F>(config: ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Stable per-test base seed so failures reproduce across runs.
    let mut seed = 0x0000_BB17_C0DE_5EEDu64;
    for b in test_name.bytes() {
        seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
    }
    let max_rejects = config.cases as u64 * 64;
    let mut passed = 0u32;
    let mut rejected = 0u64;
    while passed < config.cases {
        let case_seed = seed;
        seed = seed.wrapping_add(0xA076_1D64_78BD_642F);
        let mut rng = TestRng::new(case_seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest `{test_name}`: gave up after {rejected} rejected cases \
                         ({passed}/{} passed)",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{test_name}` failed (case {passed}, seed {case_seed:#x}): {msg}"
                );
            }
        }
    }
}

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Define property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $(#[test] fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                $crate::run_cases($cfg, stringify!($name), |__rng| {
                    let ($($arg,)*) =
                        $crate::strategy::Strategy::generate(&($($strat,)*), __rng);
                    let __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let x = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&x));
            let f = (-2.0f32..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end((xs, n) in (2usize..6).prop_flat_map(|n| (collection::vec(0.0f32..1.0, n), Just(n)))) {
            prop_assume!(n >= 2);
            prop_assert_eq!(xs.len(), n);
            prop_assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        }
    }
}
