#!/usr/bin/env bash
# Chaos smoke: run the fault-injection and crash-recovery suite in both
# SIMD modes. The fault-tolerance layer (per-job catch_unwind isolation,
# retry/drop recovery, CRC-checked checkpoints, bit-identical resume) must
# behave identically whether the packed-SIMD kernels or the scalar
# fallbacks execute the math underneath, so every run here is doubled:
# once with SIMD enabled (default) and once with ORBIT2_DISABLE_SIMD=1.
#
# Usage: scripts/chaos_smoke.sh [extra cargo-test args]
set -euo pipefail

cd "$(dirname "${BASH_SOURCE[0]}")/.."

# The fault-injection integration tests plus the trainer/checkpoint/fault
# unit suites that back them, and the serving-side resilience + chaos
# suites (deadlines, panic quarantine, drain).
run_suite() {
    cargo test --release --test failure_injection "$@"
    cargo test --release -p orbit2 --lib "$@" -- trainer:: checkpoint:: fault::
    cargo test --release -p orbit2-serve --test resilience "$@"
    cargo test --release -p orbit2-serve --test chaos_serving "$@"
}

echo "== chaos smoke: SIMD enabled =="
ORBIT2_DISABLE_SIMD=0 run_suite "$@"

echo "== chaos smoke: SIMD disabled (scalar fallbacks) =="
ORBIT2_DISABLE_SIMD=1 run_suite "$@"

# One pass driven purely through the environment knob, checking the
# ORBIT2_FAULT_PLAN parsing/arming path end to end. Only the fault unit
# suite runs under the env plan: every Trainer picks the env plan up by
# default, and the clean-run trainer tests rightly assert an empty fault
# log when nothing was (deliberately) armed.
echo "== chaos smoke: ORBIT2_FAULT_PLAN env round-trip =="
ORBIT2_FAULT_PLAN="seed=42,panic=0.02,nan=0.02,straggle=0.05,straggle_ms=5" \
    cargo test --release -p orbit2 --lib "$@" -- fault::

# The serving twin: a canned ORBIT2_SERVE_FAULT_PLAN drives the env-armed
# injection path through a default-resolution server (fault_plan: None).
# Only the default-config chaos test runs under the env plan — the other
# resilience tests pin explicit plans precisely so canned chaos like this
# cannot perturb them.
echo "== chaos smoke: ORBIT2_SERVE_FAULT_PLAN env round-trip =="
ORBIT2_SERVE_FAULT_PLAN="seed=42,panic=0.05,straggle=0.05,straggle_ms=3" \
    cargo test --release -p orbit2-serve --test chaos_serving "$@" -- default_config

echo "chaos smoke passed in both SIMD modes"
