#!/usr/bin/env bash
# Benchmark regression gate: compare the newest snapshot in each
# BENCH_*.json against the previous one and fail when any benchmark's
# median regressed by more than the tolerance.
#
# Snapshots are appended by scripts/bench_smoke.sh (one record per
# revision; re-runs on the same revision replace the old record, so the
# comparison is always newest-revision vs previous-revision). Files with
# fewer than two snapshots are skipped — there is nothing to compare.
#
# Usage: scripts/bench_check.sh [BENCH_file.json ...]
#   With no arguments every BENCH_*.json at the repo root is checked;
#   with arguments only the named files are (paths or basenames both
#   work), letting CI hold different files to different standards.
#
# Environment:
#   ORBIT2_BENCH_TOLERANCE_PCT  allowed median regression in percent
#                               (default 30). Raise it to wave through a
#                               known, accepted slowdown — e.g.
#                               `ORBIT2_BENCH_TOLERANCE_PCT=60 scripts/bench_check.sh`
#                               after landing a deliberate tradeoff.
#   ORBIT2_BENCH_TOLERANCE_PCT_<NAME>  per-file override, where <NAME> is
#                               the piece between `BENCH_` and `.json`,
#                               uppercased: BENCH_serving.json reads
#                               ORBIT2_BENCH_TOLERANCE_PCT_SERVING. The
#                               open-loop serving bench is far noisier
#                               than the kernel timers, so CI can widen
#                               its band without loosening the kernel
#                               gate.
#
# Exit status: 0 = no regression beyond tolerance, 1 = regression found,
# 2 = usage/environment error.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
TOLERANCE="${ORBIT2_BENCH_TOLERANCE_PCT:-30}"

command -v jq >/dev/null || { echo "bench_check: jq not found" >&2; exit 2; }

# Resolve the file set: explicit arguments (basename or path) or the glob.
files=()
if (( $# > 0 )); then
    for arg in "$@"; do
        f="$REPO_ROOT/$(basename "$arg")"
        [[ -e "$f" ]] || { echo "bench_check: no such bench file: $arg" >&2; exit 2; }
        files+=("$f")
    done
else
    for f in "$REPO_ROOT"/BENCH_*.json; do
        [[ -e "$f" ]] && files+=("$f")
    done
fi

# Per-file tolerance: ORBIT2_BENCH_TOLERANCE_PCT_<NAME> beats the global.
tolerance_for() {
    local base name var
    base="$(basename "$1")"
    name="${base#BENCH_}"
    name="${name%.json}"
    var="ORBIT2_BENCH_TOLERANCE_PCT_$(echo "$name" | tr '[:lower:]' '[:upper:]' | tr -c 'A-Z0-9' '_')"
    var="${var%_}"
    echo "${!var:-$TOLERANCE}"
}

# Flatten one snapshot record into {bench, median_ns} rows. Kernel records
# nest results under runs[] with a pool label; inference/serving records
# hold a flat results[] list.
FLATTEN='
    if has("runs") then
        .runs[] | .pool as $p | .results[] | {bench: "\($p)/\(.bench)", median_ns}
    else
        .results[] | {bench, median_ns}
    end
'

status=0
if (( ${#files[@]} == 0 )); then
    echo "bench_check: no BENCH_*.json files found, nothing to compare"
    exit 0
fi
for file in "${files[@]}"; do
    tol="$(tolerance_for "$file")"
    count="$(jq 'length' "$file")"
    if (( count < 2 )); then
        echo "bench_check: $(basename "$file"): only $count snapshot(s), skipping"
        continue
    fi
    report="$(jq -r --arg tol "$tol" "
        ([.[-2] | $FLATTEN] | map({(.bench): .median_ns}) | add) as \$prev
        | [.[-1] | $FLATTEN]
        | map(select(\$prev[.bench] != null and \$prev[.bench] > 0))
        | map(. + {prev: \$prev[.bench], delta_pct: ((.median_ns / \$prev[.bench] - 1) * 100)})
        | map(select(.delta_pct > (\$tol | tonumber)))
        | .[]
        | \"  \(.bench): \(.prev) ns -> \(.median_ns) ns (+\(.delta_pct | round)%)\"
    " "$file")"
    if [[ -n "$report" ]]; then
        echo "bench_check: $(basename "$file"): medians regressed more than ${tol}%:"
        echo "$report"
        status=1
    else
        echo "bench_check: $(basename "$file"): ok (newest vs previous within ${tol}%)"
    fi
done

exit "$status"
