#!/usr/bin/env bash
# Benchmark regression gate: compare the newest snapshot in each
# BENCH_*.json against the previous one and fail when any benchmark's
# median regressed by more than the tolerance.
#
# Snapshots are appended by scripts/bench_smoke.sh (one record per
# revision; re-runs on the same revision replace the old record, so the
# comparison is always newest-revision vs previous-revision). Files with
# fewer than two snapshots are skipped — there is nothing to compare.
#
# Environment:
#   ORBIT2_BENCH_TOLERANCE_PCT  allowed median regression in percent
#                               (default 30). Raise it to wave through a
#                               known, accepted slowdown — e.g.
#                               `ORBIT2_BENCH_TOLERANCE_PCT=60 scripts/bench_check.sh`
#                               after landing a deliberate tradeoff.
#
# Exit status: 0 = no regression beyond tolerance, 1 = regression found,
# 2 = usage/environment error.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
TOLERANCE="${ORBIT2_BENCH_TOLERANCE_PCT:-30}"

command -v jq >/dev/null || { echo "bench_check: jq not found" >&2; exit 2; }

# Flatten one snapshot record into {bench, median_ns} rows. Kernel records
# nest results under runs[] with a pool label; inference/serving records
# hold a flat results[] list.
FLATTEN='
    if has("runs") then
        .runs[] | .pool as $p | .results[] | {bench: "\($p)/\(.bench)", median_ns}
    else
        .results[] | {bench, median_ns}
    end
'

status=0
found_any=0
for file in "$REPO_ROOT"/BENCH_*.json; do
    [[ -e "$file" ]] || continue
    found_any=1
    count="$(jq 'length' "$file")"
    if (( count < 2 )); then
        echo "bench_check: $(basename "$file"): only $count snapshot(s), skipping"
        continue
    fi
    report="$(jq -r --arg tol "$TOLERANCE" "
        ([.[-2] | $FLATTEN] | map({(.bench): .median_ns}) | add) as \$prev
        | [.[-1] | $FLATTEN]
        | map(select(\$prev[.bench] != null and \$prev[.bench] > 0))
        | map(. + {prev: \$prev[.bench], delta_pct: ((.median_ns / \$prev[.bench] - 1) * 100)})
        | map(select(.delta_pct > (\$tol | tonumber)))
        | .[]
        | \"  \(.bench): \(.prev) ns -> \(.median_ns) ns (+\(.delta_pct | round)%)\"
    " "$file")"
    if [[ -n "$report" ]]; then
        echo "bench_check: $(basename "$file"): medians regressed more than ${TOLERANCE}%:"
        echo "$report"
        status=1
    else
        echo "bench_check: $(basename "$file"): ok (newest vs previous within ${TOLERANCE}%)"
    fi
done

if (( ! found_any )); then
    echo "bench_check: no BENCH_*.json files found, nothing to compare"
fi
exit "$status"
