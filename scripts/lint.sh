#!/usr/bin/env bash
# Lint gate: the workspace must be clippy-clean with warnings denied.
# `clippy::redundant_clone` is enabled on top of the default set because the
# COW tensor refactor makes `.clone()` cheap — a redundant one is now pure
# noise and usually marks a spot where a COW handle was misunderstood.
set -euo pipefail
cd "$(dirname "${BASH_SOURCE[0]}")/.."
exec cargo clippy --workspace --all-targets -- -D warnings -W clippy::redundant_clone "$@"
