#!/usr/bin/env bash
# Lint gate: the workspace must be clippy-clean with warnings denied.
# `clippy::redundant_clone` is enabled on top of the default set because the
# COW tensor refactor makes `.clone()` cheap — a redundant one is now pure
# noise and usually marks a spot where a COW handle was misunderstood.
# `unsafe_code` is denied workspace-wide: the SIMD kernel layer is built on
# safe lane-array structs (orbit2-tensor is `#![forbid(unsafe_code)]`), and
# no other crate has a reason to reach for `unsafe` either.
set -euo pipefail
cd "$(dirname "${BASH_SOURCE[0]}")/.."
exec cargo clippy --workspace --all-targets -- -D warnings -D unsafe_code -W clippy::redundant_clone "$@"
