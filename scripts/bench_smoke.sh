#!/usr/bin/env bash
# Smoke benchmark: run the substrate kernel + flash-attention criterion
# benches twice — with the thread-local buffer pool enabled (default) and
# disabled (ORBIT2_DISABLE_POOL=1) — and append a summary record to
# BENCH_kernels.json so pooled-vs-unpooled deltas are tracked over time.
# Then run the inference bench (tape vs tape-free forward, whole-sample and
# 2x2 tiled) and append its medians to BENCH_inference.json.
#
# Usage: scripts/bench_smoke.sh [extra cargo-bench args]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
OUT_JSON="$REPO_ROOT/BENCH_kernels.json"
INFER_JSON="$REPO_ROOT/BENCH_inference.json"
BENCHES=(kernels flash_attention)

run_benches() {
    # Prints one BENCH_JSON payload per benchmark to stdout.
    local log
    for bench in "${BENCHES[@]}"; do
        log="$(cargo bench -p orbit2-bench --bench "$bench" "$@" 2>&1)" || {
            echo "bench $bench failed:" >&2
            echo "$log" >&2
            exit 1
        }
        echo "$log" | sed -n 's/^BENCH_JSON //p'
    done
}

collect() {
    # $1 = pool mode label; remaining BENCH_JSON lines on stdin.
    jq -s --arg pool "$1" '{pool: $pool, results: .}'
}

cd "$REPO_ROOT"

echo "== bench smoke: pool enabled =="
pooled="$(run_benches "$@" | collect enabled)"

echo "== bench smoke: pool disabled (ORBIT2_DISABLE_POOL=1) =="
unpooled="$(ORBIT2_DISABLE_POOL=1 run_benches "$@" | collect disabled)"

record="$(jq -n \
    --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    --arg rev "$(git -C "$REPO_ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    --argjson pooled "$pooled" \
    --argjson unpooled "$unpooled" \
    '{date: $date, rev: $rev, runs: [$pooled, $unpooled]}')"

if [[ -s "$OUT_JSON" ]]; then
    jq --argjson rec "$record" '. + [$rec]' "$OUT_JSON" > "$OUT_JSON.tmp"
    mv "$OUT_JSON.tmp" "$OUT_JSON"
else
    jq -n --argjson rec "$record" '[$rec]' > "$OUT_JSON"
fi

echo "appended bench record to $OUT_JSON"
jq -r '.[-1].runs[] | .pool as $p | .results[] | "\($p)\t\(.bench)\t\(.median_ns) ns"' "$OUT_JSON"

# Fused-vs-unfused epilogue delta: how much the GEMM+bias+GELU fusion saves
# over the three-pass composition, from the pool-enabled run just recorded.
jq -r '
    .[-1].runs[0].results
    | (map(select(.bench | startswith("fused_linear_gelu/"))) | map({(.bench | split("/")[1]): .median_ns}) | add // {}) as $f
    | (map(select(.bench | startswith("unfused_linear_gelu/"))) | map({(.bench | split("/")[1]): .median_ns}) | add // {}) as $u
    | $f | keys[] | . as $n
    | "fused_vs_unfused_linear_gelu/\($n)\tfused \($f[$n]) ns\tunfused \($u[$n]) ns\tspeedup \(($u[$n] / $f[$n] * 100 | round) / 100)x"
' "$OUT_JSON"

echo "== bench smoke: tape vs tape-free inference =="
infer_log="$(cargo bench -p orbit2-bench --bench inference "$@" 2>&1)" || {
    echo "bench inference failed:" >&2
    echo "$infer_log" >&2
    exit 1
}
infer_results="$(echo "$infer_log" | sed -n 's/^BENCH_JSON //p' | jq -s '.')"

infer_record="$(jq -n \
    --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    --arg rev "$(git -C "$REPO_ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    --argjson results "$infer_results" \
    '{date: $date, rev: $rev, results: $results}')"

if [[ -s "$INFER_JSON" ]]; then
    jq --argjson rec "$infer_record" '. + [$rec]' "$INFER_JSON" > "$INFER_JSON.tmp"
    mv "$INFER_JSON.tmp" "$INFER_JSON"
else
    jq -n --argjson rec "$infer_record" '[$rec]' > "$INFER_JSON"
fi

echo "appended inference record to $INFER_JSON"
# Tape vs session medians per (path, model size): the forward-latency win
# of skipping autograd bookkeeping and reusing session-resident GEMM packs.
jq -r '
    .[-1].results
    | (map(select(.bench | test("/tape/"))) | map({(.bench | split("/") | "\(.[0])/\(.[2])"): .median_ns}) | add // {}) as $t
    | (map(select(.bench | test("/session/"))) | map({(.bench | split("/") | "\(.[0])/\(.[2])"): .median_ns}) | add // {}) as $s
    | $t | keys[] | . as $n
    | "\($n)\ttape \($t[$n]) ns\tsession \($s[$n]) ns\tspeedup \(($t[$n] / $s[$n] * 100 | round) / 100)x"
' "$INFER_JSON"
