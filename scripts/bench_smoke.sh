#!/usr/bin/env bash
# Smoke benchmark: run the substrate kernel + flash-attention criterion
# benches twice — with the thread-local buffer pool enabled (default) and
# disabled (ORBIT2_DISABLE_POOL=1) — and append a summary record to
# BENCH_kernels.json so pooled-vs-unpooled deltas are tracked over time.
# Then run the inference bench (tape vs tape-free forward, whole-sample,
# 2x2 tiled, and reduced-precision sessions) into BENCH_inference.json,
# and the serving bench (open-loop load, microbatched vs unbatched, plus
# f32/bf16/int8 default-precision cells and the bf16-activation cell at
# c=16) into BENCH_serving.json.
#
# Snapshots are deduped by revision: re-running on the same commit replaces
# that commit's record instead of appending a duplicate, so each BENCH file
# holds at most one snapshot per revision and scripts/bench_check.sh always
# compares distinct revisions.
#
# Usage: scripts/bench_smoke.sh [extra cargo-bench args]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
OUT_JSON="$REPO_ROOT/BENCH_kernels.json"
INFER_JSON="$REPO_ROOT/BENCH_inference.json"
SERVE_JSON="$REPO_ROOT/BENCH_serving.json"
BENCHES=(kernels flash_attention)
REV="$(git -C "$REPO_ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)"

run_benches() {
    # Prints one BENCH_JSON payload per benchmark to stdout.
    local log
    for bench in "${BENCHES[@]}"; do
        log="$(cargo bench -p orbit2-bench --bench "$bench" "$@" 2>&1)" || {
            echo "bench $bench failed:" >&2
            echo "$log" >&2
            exit 1
        }
        echo "$log" | sed -n 's/^BENCH_JSON //p'
    done
}

collect() {
    # $1 = pool mode label; remaining BENCH_JSON lines on stdin.
    jq -s --arg pool "$1" '{pool: $pool, results: .}'
}

append_record() {
    # $1 = target json file, $2 = record. Replaces any existing record for
    # the same revision (re-entrancy: one snapshot per rev per file).
    local file="$1" record="$2"
    if [[ -s "$file" ]]; then
        jq --argjson rec "$record" --arg rev "$REV" \
            'map(select(.rev != $rev)) + [$rec]' "$file" > "$file.tmp"
        mv "$file.tmp" "$file"
    else
        jq -n --argjson rec "$record" '[$rec]' > "$file"
    fi
}

cd "$REPO_ROOT"

echo "== bench smoke: pool enabled =="
pooled="$(run_benches "$@" | collect enabled)"

echo "== bench smoke: pool disabled (ORBIT2_DISABLE_POOL=1) =="
unpooled="$(ORBIT2_DISABLE_POOL=1 run_benches "$@" | collect disabled)"

record="$(jq -n \
    --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    --arg rev "$REV" \
    --argjson pooled "$pooled" \
    --argjson unpooled "$unpooled" \
    '{date: $date, rev: $rev, runs: [$pooled, $unpooled]}')"
append_record "$OUT_JSON" "$record"

echo "appended bench record to $OUT_JSON"
jq -r '.[-1].runs[] | .pool as $p | .results[] | "\($p)\t\(.bench)\t\(.median_ns) ns"' "$OUT_JSON"

# Fused-vs-unfused epilogue delta: how much the GEMM+bias+GELU fusion saves
# over the three-pass composition, from the pool-enabled run just recorded.
jq -r '
    .[-1].runs[0].results
    | (map(select(.bench | startswith("fused_linear_gelu/"))) | map({(.bench | split("/")[1]): .median_ns}) | add // {}) as $f
    | (map(select(.bench | startswith("unfused_linear_gelu/"))) | map({(.bench | split("/")[1]): .median_ns}) | add // {}) as $u
    | $f | keys[] | . as $n
    | "fused_vs_unfused_linear_gelu/\($n)\tfused \($f[$n]) ns\tunfused \($u[$n]) ns\tspeedup \(($u[$n] / $f[$n] * 100 | round) / 100)x"
' "$OUT_JSON"

# Reduced-precision GEMM delta: the bf16/int8 packed kernels vs the f32
# packed baseline (pool-enabled run) — the speedup the serving
# `--precision` flag buys per GEMM call.
jq -r '
    .[-1].runs[0].results
    | (map(select(.bench | startswith("gemm_f32/"))) | map({(.bench | split("/")[1]): .median_ns}) | add // {}) as $f
    | (map(select(.bench | startswith("gemm_bf16/"))) | map({(.bench | split("/")[1]): .median_ns}) | add // {}) as $b
    | (map(select(.bench | startswith("gemm_int8/"))) | map({(.bench | split("/")[1]): .median_ns}) | add // {}) as $q
    | $f | keys[] | . as $n
    | "gemm_precision/\($n)\tf32 \($f[$n]) ns\tbf16 \($b[$n]) ns (\(($f[$n] / $b[$n] * 100 | round) / 100)x)\tint8 \($q[$n]) ns (\(($f[$n] / $q[$n] * 100 | round) / 100)x)"
' "$OUT_JSON"

# Activation-precision deltas: the bf16-in/bf16-out kernels vs their f32
# twins from the SAME pool-enabled run — the memory-bandwidth win of
# halving the activation stream (the `--activation-precision` flag's
# kernel-level budget). Each pair shares inputs and weight pack; only the
# activation storage differs.
jq -r '
    .[-1].runs[0].results
    | (map(select(.bench | test("^(gemm_bf16_act|layer_norm_bf16|softmax_bf16)/")))
       | map({(.bench): .median_ns}) | add // {}) as $m
    | ["gemm_bf16_act", "layer_norm_bf16", "softmax_bf16"][] | . as $g
    | select($m["\($g)/f32"] != null and $m["\($g)/bf16"] != null)
    | "\($g)\tf32-act \($m["\($g)/f32"]) ns\tbf16-act \($m["\($g)/bf16"]) ns\tspeedup \(($m["\($g)/f32"] / $m["\($g)/bf16"] * 100 | round) / 100)x"
' "$OUT_JSON"

echo "== bench smoke: tape vs tape-free inference =="
infer_log="$(cargo bench -p orbit2-bench --bench inference "$@" 2>&1)" || {
    echo "bench inference failed:" >&2
    echo "$infer_log" >&2
    exit 1
}
infer_results="$(echo "$infer_log" | sed -n 's/^BENCH_JSON //p' | jq -s '.')"

infer_record="$(jq -n \
    --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    --arg rev "$REV" \
    --argjson results "$infer_results" \
    '{date: $date, rev: $rev, results: $results}')"
append_record "$INFER_JSON" "$infer_record"

echo "appended inference record to $INFER_JSON"
# Tape vs session medians per (path, model size): the forward-latency win
# of skipping autograd bookkeeping and reusing session-resident GEMM packs.
jq -r '
    .[-1].results
    | (map(select(.bench | test("/tape/"))) | map({(.bench | split("/") | "\(.[0])/\(.[2])"): .median_ns}) | add // {}) as $t
    | (map(select(.bench | test("/session/"))) | map({(.bench | split("/") | "\(.[0])/\(.[2])"): .median_ns}) | add // {}) as $s
    | $t | keys[] | . as $n
    | "\($n)\ttape \($t[$n]) ns\tsession \($s[$n]) ns\tspeedup \(($t[$n] / $s[$n] * 100 | round) / 100)x"
' "$INFER_JSON"

echo "== bench smoke: serving (microbatched vs unbatched open-loop load) =="
serve_log="$(cargo bench -p orbit2-bench --bench serving "$@" 2>&1)" || {
    echo "bench serving failed:" >&2
    echo "$serve_log" >&2
    exit 1
}
serve_results="$(echo "$serve_log" | sed -n 's/^BENCH_JSON //p' | jq -s '.')"

serve_record="$(jq -n \
    --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    --arg rev "$REV" \
    --argjson results "$serve_results" \
    '{date: $date, rev: $rev, results: $results}')"
append_record "$SERVE_JSON" "$serve_record"

echo "appended serving record to $SERVE_JSON"
# Batched-vs-unbatched throughput per concurrency level: the cross-request
# microbatching win under load (and its latency cost at low concurrency).
jq -r '
    .[-1].results
    | (map(select(.bench | test("/batched/"))) | map({(.bench | split("/")[2]): .}) | add // {}) as $b
    | (map(select(.bench | test("/unbatched/"))) | map({(.bench | split("/")[2]): .}) | add // {}) as $u
    | $b | keys[] | . as $c
    | "serving/\($c)\tbatched \($b[$c].rps) req/s (p99 \($b[$c].p99_us) us)\tunbatched \($u[$c].rps) req/s (p99 \($u[$c].p99_us) us)\tspeedup \(($b[$c].rps / $u[$c].rps * 100 | round) / 100)x"
' "$SERVE_JSON"

# Per-precision serving throughput at c=16 (126M model, unbatched): the
# f32 server vs the reduced-precision default servers under the same load.
# `serving/bf16-act/c16` is the activation axis: f32 weights, bf16
# activations (compare against the same run's serving/f32/c16).
jq -r '
    .[-1].results
    | (map(select(.bench == "serving/f32/c16")) | first) as $f
    | map(select(.bench == "serving/bf16/c16" or .bench == "serving/int8/c16"
                 or .bench == "serving/bf16-act/c16"))[]
    | "\(.bench)\t\(.rps) req/s (p99 \(.p99_us) us)\tvs f32 \($f.rps) req/s\tspeedup \((.rps / $f.rps * 100 | round) / 100)x"
' "$SERVE_JSON"
