#!/usr/bin/env bash
# The CI pipeline, runnable as one local command. Everything is offline:
# external dependencies resolve to the vendored shims under vendor/, so no
# network access is required at any step.
#
# Stages (all blocking unless noted):
#   1. release build of the whole workspace
#   2. full test suite with the packed-SIMD kernels enabled (default)
#   3. full test suite again with ORBIT2_DISABLE_SIMD=1 (scalar fallbacks)
#   4. clippy lint gate (scripts/lint.sh: -D warnings -D unsafe_code)
#   5. chaos suite (scripts/chaos_smoke.sh: fault injection + recovery,
#      both SIMD modes)
#   6. bench regression check (scripts/bench_check.sh) — NON-BLOCKING by
#      default: benchmark medians on shared CI hardware are noisy, so a
#      >30% regression prints a prominent warning instead of failing the
#      pipeline. Opt into hard failure with ORBIT2_BENCH_CHECK_STRICT=1;
#      widen the tolerance with ORBIT2_BENCH_TOLERANCE_PCT=<pct>
#      (see scripts/bench_check.sh).
#
# Usage: scripts/ci.sh
set -euo pipefail

cd "$(dirname "${BASH_SOURCE[0]}")/.."

step() {
    echo
    echo "=== ci: $* ==="
}

step "release build"
cargo build --release

step "tests (SIMD enabled)"
cargo test -q --workspace

step "tests (SIMD disabled: ORBIT2_DISABLE_SIMD=1)"
ORBIT2_DISABLE_SIMD=1 cargo test -q --workspace

step "lint"
scripts/lint.sh

step "chaos suite"
scripts/chaos_smoke.sh

step "bench regression check (non-blocking unless ORBIT2_BENCH_CHECK_STRICT=1)"
if scripts/bench_check.sh; then
    :
elif [[ "${ORBIT2_BENCH_CHECK_STRICT:-0}" == "1" ]]; then
    echo "ci: bench regression check FAILED (strict mode)" >&2
    exit 1
else
    echo
    echo "ci: WARNING: bench medians regressed beyond tolerance (see above)." >&2
    echo "ci: non-blocking by default; set ORBIT2_BENCH_CHECK_STRICT=1 to enforce," >&2
    echo "ci: or ORBIT2_BENCH_TOLERANCE_PCT=<pct> to accept a deliberate slowdown." >&2
fi

echo
echo "ci: all stages passed"
