#!/usr/bin/env bash
# The CI pipeline, runnable as one local command. Everything is offline:
# external dependencies resolve to the vendored shims under vendor/, so no
# network access is required at any step.
#
# Stages (all blocking unless noted):
#   1. release build of the whole workspace
#   2. full test suite with the packed-SIMD kernels enabled (default)
#   3. full test suite again with ORBIT2_DISABLE_SIMD=1 (scalar fallbacks)
#   4. clippy lint gate (scripts/lint.sh: -D warnings -D unsafe_code)
#   5. chaos suite (scripts/chaos_smoke.sh: fault injection + recovery,
#      both SIMD modes)
#   6. reduced-precision quality gate (crates/core/tests/precision_gate.rs):
#      bf16/int8 weight sessions AND bf16-activation sessions must
#      reproduce the f32 Table IV metrics within tolerance. Runs in
#      release, in BOTH SIMD modes: the packed kernels and their scalar
#      oracles are bit-identical by construction, so the gate must hold
#      identically under ORBIT2_DISABLE_SIMD=1 — a divergence there means
#      a kernel/oracle mismatch, not a tolerance problem.
#   7. bench regression check (scripts/bench_check.sh), split by file:
#      BENCH_kernels.json is STRICT — a >50% median regression fails the
#      pipeline. 50% sits above the measured noise floor of this box's
#      sub-millisecond rows (successive full runs under load swing a
#      random small bench by ±30-35%) while still catching real kernel
#      regressions, which historically land at 2x+ (e.g. an accumulator
#      spill). Set ORBIT2_BENCH_CHECK_STRICT=0 to demote to a warning,
#      ORBIT2_BENCH_TOLERANCE_PCT_KERNELS=<pct> to accept a deliberate
#      slowdown. The inference/serving files stay NON-BLOCKING: open-loop
#      load numbers on shared CI hardware are too noisy to gate on, so a
#      regression there prints a prominent warning instead.
#
# Usage: scripts/ci.sh
set -euo pipefail

cd "$(dirname "${BASH_SOURCE[0]}")/.."

step() {
    echo
    echo "=== ci: $* ==="
}

step "release build"
cargo build --release

step "tests (SIMD enabled)"
cargo test -q --workspace

step "tests (SIMD disabled: ORBIT2_DISABLE_SIMD=1)"
ORBIT2_DISABLE_SIMD=1 cargo test -q --workspace

step "lint"
scripts/lint.sh

step "chaos suite"
scripts/chaos_smoke.sh

step "reduced-precision quality gate (bf16/int8 weights + bf16 activations vs f32 metrics)"
cargo test --release -q -p orbit2 --test precision_gate

step "reduced-precision quality gate (SIMD disabled: ORBIT2_DISABLE_SIMD=1)"
ORBIT2_DISABLE_SIMD=1 cargo test --release -q -p orbit2 --test precision_gate

step "bench regression check: kernels (STRICT unless ORBIT2_BENCH_CHECK_STRICT=0)"
# Default tolerance 50%: above the ±30-35% run-to-run noise of the sub-ms
# rows on this 1-core box, below the 2x+ of any real kernel regression.
export ORBIT2_BENCH_TOLERANCE_PCT_KERNELS="${ORBIT2_BENCH_TOLERANCE_PCT_KERNELS:-50}"
if [[ -e BENCH_kernels.json ]]; then
    if scripts/bench_check.sh BENCH_kernels.json; then
        :
    elif [[ "${ORBIT2_BENCH_CHECK_STRICT:-1}" == "1" ]]; then
        echo "ci: kernel bench regression check FAILED (strict)" >&2
        echo "ci: widen with ORBIT2_BENCH_TOLERANCE_PCT_KERNELS=<pct> for a deliberate slowdown." >&2
        exit 1
    else
        echo "ci: WARNING: kernel bench medians regressed beyond tolerance (see above)." >&2
    fi
else
    echo "ci: BENCH_kernels.json not present, skipping kernel bench gate"
fi

step "bench regression check: inference + serving (advisory)"
advisory=()
for f in BENCH_inference.json BENCH_serving.json; do
    [[ -e "$f" ]] && advisory+=("$f")
done
if (( ${#advisory[@]} > 0 )) && ! scripts/bench_check.sh "${advisory[@]}"; then
    echo
    echo "ci: WARNING: inference/serving bench medians regressed beyond tolerance (see above)." >&2
    echo "ci: these files are advisory — open-loop load numbers are noisy on shared hardware." >&2
    echo "ci: widen a single file with ORBIT2_BENCH_TOLERANCE_PCT_SERVING=<pct> etc." >&2
fi

echo
echo "ci: all stages passed"
